(* Tests for the service layer: the injectable clock, the robustness
   policies (backoff, breaker), the bounded priority queue, labelled
   metrics and cache gauges, coalesced-batch bit-identity against direct
   block-Jacobi, and the composition of breakdown + fault-retry +
   deadline-shedding on one shared batch — everything checked across
   domain counts, since the service's whole schedule must be a pure
   function of the submitted work. *)

open Vblu_smallblas
open Vblu_sparse
open Vblu_serve
module Metrics = Vblu_obs.Metrics
module Generators = Vblu_workloads.Generators
module Bj = Vblu_precond.Block_jacobi
module Fault = Vblu_fault.Fault

let pool1 = Vblu_par.Pool.sequential
let pool2 = Vblu_par.Pool.create ~num_domains:2 ()
let pool4 = Vblu_par.Pool.create ~num_domains:4 ()
let pools = [ (1, pool1); (2, pool2); (4, pool4) ]

let state seed = Random.State.make [| 0x5e27e; seed |]

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_clock () =
  let c = Clock.manual () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  Alcotest.(check (float 1e-12)) "advances" 1.75 (Clock.now c);
  Alcotest.(check bool) "manual" true (Clock.is_manual c);
  Alcotest.check_raises "negative dt"
    (Invalid_argument "Clock.advance: negative or non-finite delta") (fun () ->
      Clock.advance c (-1.0));
  let s = Clock.system () in
  Alcotest.(check bool) "system not manual" false (Clock.is_manual s);
  let t0 = Clock.now s in
  Clock.advance s 100.0;
  Alcotest.(check bool) "advance is a no-op on system clocks" true
    (Clock.now s -. t0 < 50.0)

(* ------------------------------------------------------------------ *)
(* Policy: backoff + breaker                                           *)

let test_backoff () =
  let r = Policy.default_retry in
  let b1 = Policy.backoff r ~seed:1 ~request:5 ~attempt:1 in
  let b1' = Policy.backoff r ~seed:1 ~request:5 ~attempt:1 in
  Alcotest.(check (float 0.0)) "deterministic" b1 b1';
  Alcotest.(check bool) "within jitter envelope" true
    (b1 >= r.Policy.base_delay
    && b1 <= r.Policy.base_delay *. (1.0 +. r.Policy.jitter));
  let b3 = Policy.backoff r ~seed:1 ~request:5 ~attempt:3 in
  Alcotest.(check bool) "grows exponentially" true
    (b3 >= r.Policy.base_delay *. (r.Policy.factor ** 2.0));
  let other = Policy.backoff r ~seed:1 ~request:6 ~attempt:1 in
  Alcotest.(check bool) "jitter decorrelates requests" true (b1 <> other);
  Alcotest.check_raises "attempt >= 1"
    (Invalid_argument "Policy.backoff: attempt must be >= 1") (fun () ->
      ignore (Policy.backoff r ~seed:0 ~request:0 ~attempt:0))

let test_breaker () =
  let b =
    Policy.breaker { Policy.high_watermark = 0.5; trip_after = 2; cool_down = 2 }
  in
  let note p = Policy.breaker_note b ~pressure:p in
  Alcotest.(check string) "stays closed on one hot window" "closed"
    (Policy.state_name (note 0.9));
  Alcotest.(check string) "calm resets the streak" "closed"
    (Policy.state_name (note 0.1));
  ignore (note 0.9);
  Alcotest.(check string) "trips after consecutive hot windows" "open"
    (Policy.state_name (note 0.9));
  ignore (note 0.1);
  Alcotest.(check string) "cools down to half-open" "half-open"
    (Policy.state_name (note 0.1));
  Alcotest.(check string) "half-open reopens on a hot probe" "open"
    (Policy.state_name (note 0.9));
  ignore (note 0.1);
  ignore (note 0.1);
  Alcotest.(check string) "half-open closes on a calm probe" "closed"
    (Policy.state_name (note 0.1))

(* ------------------------------------------------------------------ *)
(* Queue                                                               *)

let test_queue () =
  let q = Queue.create ~capacity:3 in
  Alcotest.(check bool) "accepts" true (Queue.submit q ~priority:Policy.Best_effort "b1");
  Alcotest.(check bool) "accepts" true (Queue.submit q ~priority:Policy.Interactive "i1");
  Alcotest.(check bool) "accepts" true (Queue.submit q ~priority:Policy.Standard "s1");
  Alcotest.(check bool) "bounded" false (Queue.submit q ~priority:Policy.Interactive "i2");
  Alcotest.(check (option string)) "oldest is first submitted" (Some "b1")
    (Queue.oldest q);
  Alcotest.(check (list string)) "drains in priority order"
    [ "i1"; "s1"; "b1" ]
    (Queue.drain q ~max:10);
  Alcotest.(check int) "empty after drain" 0 (Queue.length q);
  ignore (Queue.submit q ~priority:Policy.Standard "a");
  ignore (Queue.submit q ~priority:Policy.Interactive "b");
  ignore (Queue.submit q ~priority:Policy.Standard "c");
  let evicted = Queue.reject_if q (fun s -> s <> "b") in
  Alcotest.(check (list string)) "reject_if returns submission order"
    [ "a"; "c" ] evicted;
  Alcotest.(check (list string)) "survivors intact" [ "b" ]
    (Queue.drain q ~max:10)

(* ------------------------------------------------------------------ *)
(* Labelled metrics (satellite: registry labels)                       *)

let test_labelled_metrics () =
  Alcotest.(check string) "sorts label keys" "req{a=1,b=2}"
    (Metrics.labelled "req" [ ("b", "2"); ("a", "1") ]);
  Alcotest.(check string) "no labels = bare name" "req"
    (Metrics.labelled "req" []);
  (try
     ignore (Metrics.labelled "x" [ ("k", "v,w") ]);
     Alcotest.fail "accepted a comma in a label value"
   with Invalid_argument _ -> ());
  (try
     ignore (Metrics.labelled "x" [ ("k", "1"); ("k", "2") ]);
     Alcotest.fail "accepted duplicate label keys"
   with Invalid_argument _ -> ());
  let m = Metrics.create () in
  Metrics.incr_l m "serve.completed" [ ("tenant", "alpha") ] 1.0;
  Metrics.incr_l m "serve.completed" [ ("tenant", "beta") ] 2.0;
  Metrics.incr_l m "serve.completed" [ ("tenant", "alpha") ] 1.0;
  Alcotest.(check (float 0.0)) "labelled counters are distinct" 2.0
    (Metrics.counter_value m "serve.completed{tenant=alpha}");
  Alcotest.(check (float 0.0)) "other tenant" 2.0
    (Metrics.counter_value m "serve.completed{tenant=beta}")

(* ------------------------------------------------------------------ *)
(* Launch cache gauges (satellite: cache observability)                *)

let test_cache_gauges () =
  let module Launch = Vblu_simt.Launch in
  (* Provoke at least one launch so the tallies are meaningful. *)
  let batch =
    Vblu_core.Batch.random_diagdom (Vblu_core.Batch.uniform_sizes ~count:4 ~size:8)
  in
  ignore (Vblu_core.Batched_lu.factor batch);
  let m = Metrics.create () in
  Launch.Cache.export_gauges m;
  let gauge name =
    match List.assoc_opt name (Metrics.snapshot m) with
    | Some (Metrics.Gauge v) -> v
    | _ -> Alcotest.failf "gauge %s missing" name
  in
  let hits, misses = Launch.Cache.stats () in
  Alcotest.(check (float 0.0)) "hits gauge" (float_of_int hits)
    (gauge "launch.cache.hits");
  Alcotest.(check (float 0.0)) "misses gauge" (float_of_int misses)
    (gauge "launch.cache.misses");
  Alcotest.(check (float 0.0)) "direct gauge"
    (float_of_int (Launch.Cache.direct_hits ()))
    (gauge "launch.cache.direct_hits");
  Alcotest.(check (float 0.0)) "entries gauge"
    (float_of_int (Launch.Cache.entries ()))
    (gauge "launch.cache.entries");
  let rate = gauge "launch.cache.hit_rate" in
  Alcotest.(check bool) "hit rate in [0,1]" true (rate >= 0.0 && rate <= 1.0)

(* ------------------------------------------------------------------ *)
(* Tenant accounting                                                   *)

let test_tenant () =
  let t = Tenant.create () in
  let m = Metrics.create () in
  let obs = Some (Vblu_obs.Ctx.v ~metrics:m ()) in
  Tenant.note t ~obs ~tenant:"a" Tenant.Submitted;
  Tenant.note t ~obs ~tenant:"a" Tenant.Completed;
  Tenant.note t ~obs ~tenant:"b" Tenant.Submitted;
  Tenant.note t ~obs ~tenant:"b" Tenant.Rejected;
  let ca = Tenant.counts t "a" in
  Alcotest.(check int) "a submitted" 1 ca.Tenant.submitted;
  Alcotest.(check int) "a completed" 1 ca.Tenant.completed;
  let tot = Tenant.totals t in
  Alcotest.(check int) "totals submitted" 2 tot.Tenant.submitted;
  Alcotest.(check int) "totals rejected" 1 tot.Tenant.rejected;
  Alcotest.(check (list string)) "snapshot sorted" [ "a"; "b" ]
    (List.map fst (Tenant.snapshot t));
  Alcotest.(check (float 0.0)) "labelled counter emitted" 1.0
    (Metrics.counter_value m "serve.submitted{tenant=a}");
  Alcotest.(check int) "unknown tenant is zero" 0
    (Tenant.counts t "nope").Tenant.submitted

(* ------------------------------------------------------------------ *)
(* Batcher: coalesced launch == direct block-Jacobi, bitwise           *)

let random_problem st =
  let blocks = 2 + Random.State.int st 4 in
  let block_size = 3 + Random.State.int st 14 in
  let a = Generators.block_tridiagonal ~state:st ~blocks ~block_size () in
  let n, _ = Csr.dims a in
  let rhs = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
  { Batcher.a; rhs; max_block_size = 32; precond = Batcher.Jacobi }

let direct_solve (p : Batcher.problem) =
  match p.Batcher.precond with
  | Batcher.Jacobi ->
    let bj, _ =
      Bj.create ~variant:Bj.Lu ~max_block_size:p.Batcher.max_block_size
        p.Batcher.a
    in
    bj.Vblu_precond.Preconditioner.apply p.Batcher.rhs
  | Batcher.Ilu0 ->
    let bi, _ =
      Vblu_precond.Block_ilu0.create ~max_block_size:p.Batcher.max_block_size
        p.Batcher.a
    in
    bi.Vblu_precond.Preconditioner.apply p.Batcher.rhs

let test_batcher_bit_identity () =
  let st = state 11 in
  let problems = Array.init 6 (fun _ -> random_problem st) in
  let expected = Array.map direct_solve problems in
  List.iter
    (fun (d, pool) ->
      let report = Batcher.run ~pool problems in
      Alcotest.(check int) "problem count" 6 report.Batcher.problems;
      Alcotest.(check bool) "coalesces more blocks than problems" true
        (report.Batcher.coalesced_blocks > 6);
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "problem %d bit-identical (domains %d)" i d)
            true
            (o.Batcher.y = expected.(i)))
        report.Batcher.outcomes)
    pools

(* A matrix whose single diagonal block is exactly singular: rows 0 and 1
   share the column pattern {0,1}, so supervariable blocking fuses them
   into one rank-1 2x2 block. *)
let singular_problem () =
  let a = Csr.of_dense (Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]) in
  { Batcher.a; rhs = [| 3.0; -1.5 |]; max_block_size = 32;
    precond = Batcher.Jacobi }

let test_batcher_breakdown () =
  let st = state 13 in
  let clean = random_problem st in
  let expected = direct_solve clean in
  let report = Batcher.run [| singular_problem (); clean |] in
  let bad = report.Batcher.outcomes.(0) and good = report.Batcher.outcomes.(1) in
  Alcotest.(check (list int)) "singular block degraded" [ 0 ]
    bad.Batcher.degraded_blocks;
  Alcotest.(check bool) "degraded block = identity on rhs" true
    (bad.Batcher.y = [| 3.0; -1.5 |]);
  Alcotest.(check (list int)) "batchmate untouched" [] good.Batcher.degraded_blocks;
  Alcotest.(check bool) "batchmate bitwise clean" true (good.Batcher.y = expected)

(* A mixed wave: ILU0 requests route through their own batched
   block-ILU(0) setup+apply, Jacobi batchmates still coalesce — and both
   come back bitwise equal to their direct solves. *)
let test_batcher_mixed_families () =
  let st = state 29 in
  let problems =
    Array.init 6 (fun i ->
        let p = random_problem st in
        if i mod 2 = 1 then { p with Batcher.precond = Batcher.Ilu0 } else p)
  in
  let expected = Array.map direct_solve problems in
  List.iter
    (fun (d, pool) ->
      let report = Batcher.run ~pool problems in
      Alcotest.(check int) "problem count" 6 report.Batcher.problems;
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "mixed problem %d bit-identical (domains %d)" i d)
            true
            (o.Batcher.y = expected.(i)))
        report.Batcher.outcomes)
    pools

let test_batcher_validate () =
  let p = singular_problem () in
  (match Batcher.validate { p with Batcher.rhs = [| 1.0 |] } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted mismatched rhs");
  (match Batcher.validate { p with Batcher.max_block_size = 33 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted block bound > 32");
  match Batcher.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected valid problem: %s" e

(* ------------------------------------------------------------------ *)
(* Service basics                                                      *)

let quick_config =
  {
    Service.default_config with
    Service.capacity = 8;
    max_batch = 4;
    min_fill = 2;
  }

let test_service_completes () =
  let st = state 17 in
  let svc = Service.create quick_config in
  let p = random_problem st in
  let expected = direct_solve p in
  let id = Service.submit svc ~tenant:"t0" p in
  Alcotest.(check bool) "pending before step" true
    (Service.status svc id = Service.Pending);
  Service.drain svc;
  (match Service.status svc id with
  | Service.Completed { y; degraded; demoted; attempts; _ } ->
    Alcotest.(check bool) "bit-identical to direct solve" true (y = expected);
    Alcotest.(check bool) "clean" false degraded;
    Alcotest.(check bool) "not demoted" false demoted;
    Alcotest.(check int) "one launch" 1 attempts
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check int) "nothing pending" 0 (Service.pending svc)

let test_service_rejects_on_full_queue () =
  let st = state 19 in
  let svc = Service.create { quick_config with Service.capacity = 2 } in
  let ids = Array.init 4 (fun _ -> Service.submit svc (random_problem st)) in
  let rejected =
    Array.to_list ids
    |> List.filter (fun id ->
           match Service.status svc id with
           | Service.Rejected (Service.Queue_full _) -> true
           | _ -> false)
  in
  Alcotest.(check int) "overflow rejected with reason" 2 (List.length rejected);
  Service.drain svc;
  let h = Service.health svc in
  Alcotest.(check int) "conservation: completed" 2
    h.Service.h_totals.Tenant.completed;
  Alcotest.(check int) "conservation: rejected" 2
    h.Service.h_totals.Tenant.rejected

let test_service_rejects_invalid () =
  let svc = Service.create quick_config in
  let id =
    Service.submit svc
      { Batcher.a = Csr.of_dense (Matrix.of_rows [| [| 1.0 |] |]);
        rhs = [| 1.0; 2.0 |]; max_block_size = 32;
        precond = Batcher.Jacobi }
  in
  match Service.status svc id with
  | Service.Rejected (Service.Invalid_problem _) -> ()
  | _ -> Alcotest.fail "expected invalid-problem rejection"

let test_service_sheds_expired () =
  let st = state 23 in
  let svc = Service.create quick_config in
  let live = Service.submit svc (random_problem st) in
  let dead = Service.submit svc ~deadline:(-1.0) (random_problem st) in
  Service.drain svc;
  (match Service.status svc dead with
  | Service.Shed _ -> ()
  | _ -> Alcotest.fail "expected deadline shed");
  match Service.status svc live with
  | Service.Completed _ -> ()
  | _ -> Alcotest.fail "live request should complete"

let test_service_retries_faults () =
  let st = state 29 in
  let p = random_problem st in
  let expected = direct_solve p in
  (* One explicit register fault on the first diagonal block of the first
     (only) request; the claim is one-shot and the retry wave re-indexes,
     so the relaunch runs clean. *)
  let site =
    { Fault.problem = 0; step = 1; lane = 0; target = Fault.Register;
      kind = Fault.Bit_flip 55 }
  in
  let faults = Fault.Plan.make ~every:0 ~at:[ site ] () in
  let svc = Service.create ~faults quick_config in
  let id = Service.submit svc p in
  Service.step ~force:true svc;
  Alcotest.(check bool) "still pending after the faulted launch" true
    (Service.status svc id = Service.Pending);
  let h = Service.health svc in
  Alcotest.(check int) "retry recorded" 1 h.Service.h_totals.Tenant.retried;
  Service.drain svc;
  match Service.status svc id with
  | Service.Completed { y; attempts; _ } ->
    Alcotest.(check int) "completed on the second launch" 2 attempts;
    Alcotest.(check bool) "retried result bit-identical" true (y = expected)
  | _ -> Alcotest.fail "expected completion after retry"

let test_service_fails_after_budget () =
  let st = state 31 in
  let p = random_problem st in
  (* Budget 0 disables retrying outright, so the first fault verdict is
     terminal.  (A nonzero budget cannot be exhausted by a lone request:
     fault-plan claims are one-shot per (problem, step), so its retry
     wave necessarily runs clean — which the retry test above relies
     on.  Exhaustion needs re-faulting across waves, which the CLI
     overload demo exercises with [every=N] plans over many requests.) *)
  let faults = Fault.Plan.make ~seed:3 ~every:1 () in
  let cfg =
    { quick_config with
      Service.retry = { Policy.default_retry with Policy.budget = 0 } }
  in
  let svc = Service.create ~faults cfg in
  let id = Service.submit svc p in
  Service.drain svc;
  match Service.status svc id with
  | Service.Failed { attempts; _ } ->
    Alcotest.(check int) "failed on the first launch" 1 attempts
  | _ -> Alcotest.fail "expected failure with a zero retry budget"

let test_service_breakdown_policies () =
  let st = state 37 in
  let clean = random_problem st in
  let expected = direct_solve clean in
  let svc = Service.create quick_config in
  let id_identity =
    Service.submit svc ~breakdown:Policy.Identity_block (singular_problem ())
  in
  let id_fail =
    Service.submit svc ~breakdown:Policy.Fail_request (singular_problem ())
  in
  let id_clean = Service.submit svc clean in
  Service.drain svc;
  (match Service.status svc id_identity with
  | Service.Completed { y; degraded; _ } ->
    Alcotest.(check bool) "identity policy completes degraded" true degraded;
    Alcotest.(check bool) "identity result = rhs" true (y = [| 3.0; -1.5 |])
  | _ -> Alcotest.fail "identity-policy request should complete");
  (match Service.status svc id_fail with
  | Service.Failed _ -> ()
  | _ -> Alcotest.fail "fail-policy request should fail");
  match Service.status svc id_clean with
  | Service.Completed { y; degraded; _ } ->
    Alcotest.(check bool) "batchmate clean" false degraded;
    Alcotest.(check bool) "batchmate bitwise identical" true (y = expected)
  | _ -> Alcotest.fail "clean batchmate should complete"

(* ------------------------------------------------------------------ *)
(* Composition: breakdown + fault retry + deadline shed on one batch,  *)
(* identical across domain counts (the ISSUE's satellite property)     *)

type probe = {
  p_status : string;
  p_y : float array option;
  p_attempts : int;
}

let probe_of_status = function
  | Service.Pending -> { p_status = "pending"; p_y = None; p_attempts = 0 }
  | Service.Completed { y; degraded; demoted; attempts; _ } ->
    {
      p_status =
        Printf.sprintf "completed(degraded=%b,demoted=%b)" degraded demoted;
      p_y = Some y;
      p_attempts = attempts;
    }
  | Service.Rejected r ->
    { p_status = "rejected:" ^ Service.reject_reason_text r; p_y = None;
      p_attempts = 0 }
  | Service.Shed _ -> { p_status = "shed"; p_y = None; p_attempts = 0 }
  | Service.Failed { attempts; _ } ->
    { p_status = "failed"; p_y = None; p_attempts = attempts }

let composition_run pool =
  let st = state 41 in
  let clean1 = random_problem st in
  let clean2 = random_problem st in
  let faulted = random_problem st in
  (* The faulted request is submitted second: in the first wave it is
     batch problem 1 (the breakdown problem is 0, contributing one
     block), so the explicit site lands on its first diagonal block. *)
  let site =
    { Fault.problem = 1; step = 0; lane = 0; target = Fault.Register;
      kind = Fault.Bit_flip 55 }
  in
  let faults = Fault.Plan.make ~every:0 ~at:[ site ] () in
  let svc = Service.create ~pool ~faults quick_config in
  let id_break =
    Service.submit svc ~breakdown:Policy.Identity_block (singular_problem ())
  in
  let id_fault = Service.submit svc faulted in
  let id_clean1 = Service.submit svc clean1 in
  let id_clean2 = Service.submit svc clean2 in
  let id_dead = Service.submit svc ~deadline:(-1.0) (random_problem st) in
  Service.drain svc;
  let h = Service.health svc in
  ( List.map
      (fun id -> probe_of_status (Service.status svc id))
      [ id_break; id_fault; id_clean1; id_clean2; id_dead ],
    ( h.Service.h_totals,
      (direct_solve clean1, direct_solve clean2, direct_solve faulted) ) )

let test_composition () =
  let runs = List.map (fun (d, pool) -> (d, composition_run pool)) pools in
  let _, (probes1, (totals1, (e1, e2, ef))) = List.hd runs in
  (* The three terminal classes coexist in one drained service... *)
  (match probes1 with
  | [ brk; flt; c1; c2; dead ] ->
    Alcotest.(check string) "breakdown completed degraded"
      "completed(degraded=true,demoted=false)" brk.p_status;
    Alcotest.(check bool) "breakdown result = rhs (identity)" true
      (brk.p_y = Some [| 3.0; -1.5 |]);
    Alcotest.(check string) "faulted completed after retry"
      "completed(degraded=false,demoted=false)" flt.p_status;
    Alcotest.(check int) "faulted took two launches" 2 flt.p_attempts;
    Alcotest.(check bool) "faulted retry is bitwise clean" true
      (flt.p_y = Some ef);
    Alcotest.(check bool) "clean batchmates bitwise untouched" true
      (c1.p_y = Some e1 && c2.p_y = Some e2);
    Alcotest.(check string) "expired request shed" "shed" dead.p_status
  | _ -> Alcotest.fail "probe arity");
  (* ...accounting is exact... *)
  Alcotest.(check int) "conservation" totals1.Tenant.submitted
    (totals1.Tenant.completed + totals1.Tenant.rejected + totals1.Tenant.shed
   + totals1.Tenant.failed);
  (* ...and the whole transcript is identical for every domain count. *)
  List.iter
    (fun (d, (probes, (totals, _))) ->
      Alcotest.(check bool)
        (Printf.sprintf "statuses identical at %d domains" d)
        true
        (probes = probes1);
      Alcotest.(check bool)
        (Printf.sprintf "totals identical at %d domains" d)
        true (totals = totals1))
    (List.tl runs)

(* ------------------------------------------------------------------ *)
(* Setup cache: recurring requests reuse setup, bit-identically        *)

(* Drift only the last stored entry (it lives in the last block row):
   earlier blocks stay bitwise current, so both families — including
   ILU0, whose dirty closure propagates downstream only — must reuse
   some cached setup on the recurring wave. *)
let drift_values (p : Batcher.problem) =
  let a = p.Batcher.a in
  let values = Array.copy a.Csr.values in
  let last = Array.length values - 1 in
  values.(last) <- values.(last) *. 1.001;
  let a' =
    Csr.create ~n_rows:a.Csr.n_rows ~n_cols:a.Csr.n_cols
      ~row_ptr:(Array.copy a.Csr.row_ptr) ~col_idx:(Array.copy a.Csr.col_idx)
      ~values
  in
  { p with Batcher.a = a' }

let test_setup_cache_recurring family =
  let st = state 41 in
  let p0 =
    match family with
    | Batcher.Jacobi -> random_problem st
    | Batcher.Ilu0 -> { (random_problem st) with Batcher.precond = Batcher.Ilu0 }
  in
  let svc =
    Service.create { quick_config with Service.setup_cache = true }
  in
  let id0 = Service.submit svc p0 in
  Service.drain svc;
  let fresh_cold = (Service.health svc).Service.h_setup_fresh_blocks in
  let p1 = drift_values p0 in
  let id1 = Service.submit svc p1 in
  Service.drain svc;
  let check id p =
    match Service.status svc id with
    | Service.Completed { y; _ } ->
      Alcotest.(check bool) "bit-identical to direct solve" true
        (y = direct_solve p)
    | _ -> Alcotest.fail "expected completion"
  in
  check id0 p0;
  check id1 p1;
  let h = Service.health svc in
  Alcotest.(check bool) "second wave reused cached setup" true
    (h.Service.h_setup_reused_blocks > 0);
  Alcotest.(check bool) "recurring wave factored fewer blocks than cold" true
    (h.Service.h_setup_fresh_blocks < 2 * fresh_cold)

let test_setup_cache_jacobi () = test_setup_cache_recurring Batcher.Jacobi
let test_setup_cache_ilu0 () = test_setup_cache_recurring Batcher.Ilu0

(* With no recurring requests the cache must be inert: the report
   checksum (latencies included) matches the uncached run bit for bit. *)
let test_setup_cache_inert_without_repeats () =
  let spec =
    { Loadgen.default_spec with Loadgen.requests = 30; deadline_windows = 8.0 }
  in
  let off = Loadgen.run ~config:quick_config spec in
  let on_ =
    Loadgen.run
      ~config:{ quick_config with Service.setup_cache = true }
      spec
  in
  Alcotest.(check string) "checksums equal" (Loadgen.checksum off)
    (Loadgen.checksum on_)

let test_loadgen_repeat_share () =
  let spec =
    {
      Loadgen.default_spec with
      Loadgen.requests = 60;
      deadline_windows = 10.0;
      ilu0_share = 0.2;
      repeat_share = 0.3;
    }
  in
  let cached =
    Loadgen.run ~config:{ quick_config with Service.setup_cache = true } spec
  in
  Alcotest.(check bool) "accounted" true cached.Loadgen.accounted;
  Alcotest.(check bool) "verified bit-identical" true cached.Loadgen.verified;
  let uncached = Loadgen.run ~config:quick_config spec in
  Alcotest.(check bool) "uncached verified too" true uncached.Loadgen.verified;
  Alcotest.(check int) "same completions" uncached.Loadgen.completed
    cached.Loadgen.completed;
  (* Repeats must leave the non-repeat prefix of the stream untouched:
     share 0 reproduces the baseline stream. *)
  let baseline =
    Loadgen.run ~config:quick_config
      { spec with Loadgen.repeat_share = 0.0 }
  in
  Alcotest.(check bool) "baseline verified" true baseline.Loadgen.verified

(* ------------------------------------------------------------------ *)
(* Properties: conservation + determinism under random load            *)

let qcheck_conservation =
  QCheck.Test.make ~count:8
    ~name:"loadgen: conservation, overshoot bound and bit-identity hold \
           under random load, identically across domains"
    QCheck.(pair (int_bound 1000) (int_range 0 2))
    (fun (seed, load_ix) ->
      let spec =
        {
          Loadgen.default_spec with
          Loadgen.seed;
          requests = 40;
          load = [| 0.5; 1.0; 2.0 |].(load_ix);
          deadline_windows = 6.0;
        }
      in
      let config =
        { Service.default_config with Service.capacity = 16; max_batch = 4;
          min_fill = 2 }
      in
      let reports =
        List.map
          (fun (_, pool) -> Loadgen.run ~pool ~config spec)
          pools
      in
      let r1 = List.hd reports in
      if not r1.Loadgen.accounted then
        QCheck.Test.fail_report "requests unaccounted";
      if not r1.Loadgen.within_bound then
        QCheck.Test.fail_report "deadline overshoot beyond one batch window";
      if not r1.Loadgen.verified then
        QCheck.Test.fail_report "completed result differs from direct solve";
      List.for_all
        (fun r -> Loadgen.checksum r = Loadgen.checksum r1)
        (List.tl reports))

let () =
  Alcotest.run "serve"
    [
      ( "clock",
        [
          Alcotest.test_case "manual and system clocks" `Quick test_clock;
        ] );
      ( "policy",
        [
          Alcotest.test_case "deterministic jittered backoff" `Quick
            test_backoff;
          Alcotest.test_case "breaker state machine" `Quick test_breaker;
        ] );
      ( "queue",
        [ Alcotest.test_case "bounded priority queue" `Quick test_queue ] );
      ( "obs",
        [
          Alcotest.test_case "labelled metrics" `Quick test_labelled_metrics;
          Alcotest.test_case "launch cache gauges" `Quick test_cache_gauges;
          Alcotest.test_case "tenant accounting" `Quick test_tenant;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "coalesced == direct, bitwise, across domains"
            `Quick test_batcher_bit_identity;
          Alcotest.test_case "breakdown isolates batchmates" `Quick
            test_batcher_breakdown;
          Alcotest.test_case "mixed jacobi/ilu0 wave == direct, bitwise"
            `Quick test_batcher_mixed_families;
          Alcotest.test_case "admission validation" `Quick
            test_batcher_validate;
        ] );
      ( "service",
        [
          Alcotest.test_case "submit/step/complete" `Quick
            test_service_completes;
          Alcotest.test_case "admission control rejects with reason" `Quick
            test_service_rejects_on_full_queue;
          Alcotest.test_case "invalid problems rejected" `Quick
            test_service_rejects_invalid;
          Alcotest.test_case "deadline shedding" `Quick
            test_service_sheds_expired;
          Alcotest.test_case "fault verdict retries then completes" `Quick
            test_service_retries_faults;
          Alcotest.test_case "retry budget exhaustion fails" `Quick
            test_service_fails_after_budget;
          Alcotest.test_case "breakdown policies per request" `Quick
            test_service_breakdown_policies;
        ] );
      ( "composition",
        [
          Alcotest.test_case
            "breakdown + fault retry + deadline shed on one batch" `Quick
            test_composition;
        ] );
      ( "setup cache",
        [
          Alcotest.test_case "recurring jacobi reuses setup, bitwise" `Quick
            test_setup_cache_jacobi;
          Alcotest.test_case "recurring ilu0 reuses setup, bitwise" `Quick
            test_setup_cache_ilu0;
          Alcotest.test_case "cache inert without repeats" `Quick
            test_setup_cache_inert_without_repeats;
          Alcotest.test_case "loadgen repeat-share verified with cache" `Quick
            test_loadgen_repeat_share;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_conservation ] );
    ]
