(* Tests for level scheduling and the block-ILU(0) preconditioner family. *)

open Vblu_sparse
open Vblu_precond

let check_bitwise name (a : float array) (b : float array) =
  Alcotest.(check int) (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        Alcotest.failf "%s: element %d differs bitwise: %h vs %h" name i x
          b.(i))
    a

let rhs_for n =
  let st = Random.State.make [| 0x1107; n |] in
  Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0)

(* ------------------------------------------------------------------ *)
(* Level scheduling                                                    *)

let test_levels_chain () =
  (* A bidiagonal chain is fully sequential: n levels of width 1. *)
  let n = 7 in
  let row_ptr = Array.init (n + 1) (fun i -> if i = 0 then 0 else (2 * i) - 1) in
  let nnz = row_ptr.(n) in
  let col_idx = Array.make nnz 0 and values = Array.make nnz 1.0 in
  let q = ref 0 in
  for i = 0 to n - 1 do
    if i > 0 then begin
      col_idx.(!q) <- i - 1;
      incr q
    end;
    col_idx.(!q) <- i;
    incr q
  done;
  let a = Csr.create ~n_rows:n ~n_cols:n ~row_ptr ~col_idx ~values in
  let s = Levels.scalar Levels.Lower a in
  let st = Levels.stats s in
  Alcotest.(check int) "levels" n st.Levels.levels;
  Alcotest.(check int) "max width" 1 st.Levels.max_width;
  Alcotest.(check int) "critical path" n st.Levels.critical_path_rows;
  (* The upper DAG of the same matrix has no edges: one level. *)
  let u = Levels.stats (Levels.scalar Levels.Upper a) in
  Alcotest.(check int) "upper levels" 1 u.Levels.levels;
  Alcotest.(check int) "upper width" n u.Levels.max_width

let test_levels_block_tridiagonal () =
  let blocks = 6 and bs = 4 in
  let a = Vblu_workloads.Generators.block_tridiagonal ~blocks ~block_size:bs () in
  let blk = Supervariable.uniform ~n:(blocks * bs) ~block_size:bs in
  let s =
    Levels.schedule Levels.Lower ~starts:blk.Supervariable.starts
      ~sizes:blk.Supervariable.sizes a
  in
  (* Block i depends exactly on block i-1: a pure chain. *)
  Array.iteri
    (fun i deps ->
      if i = 0 then Alcotest.(check int) "no deps" 0 (Array.length deps)
      else Alcotest.(check (array int)) "chain dep" [| i - 1 |] deps)
    s.Levels.deps;
  let st = Levels.stats s in
  Alcotest.(check int) "levels = blocks" blocks st.Levels.levels;
  Alcotest.(check int) "critical path rows" (blocks * bs)
    st.Levels.critical_path_rows

(* Structural invariants of the schedule, on the whole 48-matrix suite:
   level sets partition the blocks, every dependency sits at a strictly
   lower level, and a block's level is 1 + its deepest dependency. *)
let check_schedule_invariants name (s : Levels.schedule) =
  let k = Array.length s.Levels.sizes in
  let seen = Array.make k false in
  Array.iter
    (fun set ->
      Array.iter
        (fun i ->
          Alcotest.(check bool) (name ^ ": block listed once") false seen.(i);
          seen.(i) <- true)
        set)
    s.Levels.level_sets;
  Array.iter
    (fun s' -> Alcotest.(check bool) (name ^ ": all listed") true s')
    seen;
  Array.iteri
    (fun i deps ->
      let expect =
        Array.fold_left (fun m d -> max m (s.Levels.level_of.(d) + 1)) 0 deps
      in
      Alcotest.(check int) (name ^ ": level rule") expect s.Levels.level_of.(i);
      Array.iter
        (fun d ->
          Alcotest.(check bool)
            (name ^ ": dep strictly earlier")
            true
            (s.Levels.level_of.(d) < s.Levels.level_of.(i)))
        deps)
    s.Levels.deps;
  let st = Levels.stats s in
  Alcotest.(check int) (name ^ ": stats blocks") k st.Levels.blocks;
  Alcotest.(check int)
    (name ^ ": stats levels")
    (Array.length s.Levels.level_sets)
    st.Levels.levels

let test_levels_suite () =
  List.iter
    (fun e ->
      let a = Vblu_workloads.Suite.matrix e in
      let n, _ = Csr.dims a in
      let blk = Supervariable.blocking ~max_block_size:16 a in
      let lower =
        Levels.schedule Levels.Lower ~starts:blk.Supervariable.starts
          ~sizes:blk.Supervariable.sizes a
      in
      let upper =
        Levels.schedule Levels.Upper ~starts:blk.Supervariable.starts
          ~sizes:blk.Supervariable.sizes a
      in
      check_schedule_invariants (e.Vblu_workloads.Suite.name ^ "/lower") lower;
      check_schedule_invariants (e.Vblu_workloads.Suite.name ^ "/upper") upper;
      let ls = Levels.stats lower in
      Alcotest.(check bool)
        (e.Vblu_workloads.Suite.name ^ ": critical path bounded")
        true
        (ls.Levels.critical_path_rows >= 1 && ls.Levels.critical_path_rows <= n))
    Vblu_workloads.Suite.all

(* ------------------------------------------------------------------ *)
(* Size-1 blocks: bitwise equivalence with the scalar ILU(0)           *)

let scalar_blocking n = Supervariable.uniform ~n ~block_size:1

let check_scalar_equivalence name a =
  let n, _ = Csr.dims a in
  let f, finfo = Ilu0.factorize a in
  Alcotest.(check int) (name ^ ": scalar info clean") 0 finfo;
  let p, info = Block_ilu0.create ~blocking:(scalar_blocking n) a in
  Alcotest.(check int) (name ^ ": block info clean") 0 info.Block_ilu0.factor_info;
  let r = rhs_for n in
  check_bitwise (name ^ ": apply == scalar solve") (Ilu0.solve f r)
    (Preconditioner.apply p r)

let test_scalar_equivalence_fixed () =
  check_scalar_equivalence "conv-diff"
    (Vblu_workloads.Generators.convection_diffusion_2d ~nx:7 ~ny:6
       ~peclet:25.0 ());
  check_scalar_equivalence "laplace"
    (Vblu_workloads.Generators.laplacian_2d ~nx:6 ~ny:5 ());
  check_scalar_equivalence "fem"
    (Vblu_workloads.Generators.fem_blocks ~nodes:12 ~vars_per_node:3 ())

let qcheck_scalar_equivalence =
  QCheck.Test.make ~count:15 ~name:"size-1 block-ILU0 == scalar ILU0 bitwise"
    QCheck.(triple (int_range 2 8) (int_range 2 8) (int_range 0 60))
    (fun (nx, ny, pe) ->
      let a =
        Vblu_workloads.Generators.convection_diffusion_2d ~nx ~ny
          ~peclet:(float_of_int pe) ()
      in
      let n, _ = Csr.dims a in
      let f, finfo = Ilu0.factorize a in
      if finfo <> 0 then QCheck.assume_fail ()
      else begin
        let p, info = Block_ilu0.create ~blocking:(scalar_blocking n) a in
        let r = rhs_for n in
        let x_s = Ilu0.solve f r and x_b = Preconditioner.apply p r in
        info.Block_ilu0.factor_info = 0
        && Array.for_all2
             (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
             x_s x_b
      end)

(* ------------------------------------------------------------------ *)
(* Cross-domain / cross-layout bit identity                            *)

let test_apply_bit_identical_domains_layouts () =
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:20 ~vars_per_node:4 () in
  let n, _ = Csr.dims a in
  let r = rhs_for n in
  let reference = ref [||] in
  List.iter
    (fun domains ->
      List.iter
        (fun layout ->
          let pool = Vblu_par.Pool.create ~num_domains:domains () in
          let p, info =
            Block_ilu0.create ~pool ~layout ~max_block_size:8 a
          in
          Alcotest.(check int) "clean" 0 info.Block_ilu0.factor_info;
          let x = Preconditioner.apply p r in
          if Array.length !reference = 0 then reference := x
          else
            check_bitwise
              (Printf.sprintf "domains=%d layout=%s" domains
                 (Vblu_core.Batch.layout_name layout))
              !reference x)
        [ Vblu_core.Batch.Blocked; Vblu_core.Batch.Interleaved ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Wave accounting                                                     *)

let test_wave_accounting () =
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:16 ~vars_per_node:4 () in
  let n, _ = Csr.dims a in
  let p, info = Block_ilu0.create ~max_block_size:8 a in
  Alcotest.(check bool) "setup issued batched launches" true
    (info.Block_ilu0.setup_launches > 0);
  Alcotest.(check bool) "setup modelled time" true
    (info.Block_ilu0.setup_modelled_seconds > 0.0);
  Alcotest.(check bool) "no apply yet" true
    (!(info.Block_ilu0.last_apply) = None);
  let _ = Preconditioner.apply p (rhs_for n) in
  match !(info.Block_ilu0.last_apply) with
  | None -> Alcotest.fail "apply recorded no stats"
  | Some stats ->
    Alcotest.(check bool) "waves recorded" true
      (Array.length stats.Block_ilu0.waves > 0);
    Alcotest.(check bool) "modelled apply time" true
      (stats.Block_ilu0.modelled_seconds > 0.0);
    let lower_levels = Array.length info.Block_ilu0.lower.Levels.level_sets in
    let upper_levels = Array.length info.Block_ilu0.upper.Levels.level_sets in
    (* Every backward level carries exactly one TRSV wave. *)
    let trsv_waves =
      Array.length
        (Array.of_list
           (List.filter
              (fun w -> w.Block_ilu0.kernel = "trsv")
              (Array.to_list stats.Block_ilu0.waves)))
    in
    Alcotest.(check int) "one TRSV wave per backward level" upper_levels
      trsv_waves;
    Array.iter
      (fun w ->
        Alcotest.(check bool) "wave occupancy" true (w.Block_ilu0.problems >= 1);
        Alcotest.(check bool) "wave transactions" true
          (w.Block_ilu0.transactions > 0);
        Alcotest.(check bool) "wave level in range" true
          (w.Block_ilu0.level >= 0
          && w.Block_ilu0.level < max lower_levels upper_levels))
      stats.Block_ilu0.waves

(* ------------------------------------------------------------------ *)
(* Golden parity: on a block-diagonal matrix block-ILU0 degenerates to
   block-Jacobi (no coupling blocks to eliminate), bit for bit.        *)

let test_block_diagonal_parity () =
  let blocks = 5 and bs = 4 in
  let a =
    Vblu_workloads.Generators.block_tridiagonal ~blocks ~block_size:bs
      ~coupling:0.0 ()
  in
  let n = blocks * bs in
  let blk = Supervariable.uniform ~n ~block_size:bs in
  let pj, _ = Block_jacobi.create ~blocking:blk a in
  let pi, info = Block_ilu0.create ~blocking:blk a in
  Alcotest.(check int) "clean" 0 info.Block_ilu0.factor_info;
  let r = rhs_for n in
  check_bitwise "block-diagonal parity with block-Jacobi"
    (Preconditioner.apply pj r)
    (Preconditioner.apply pi r)

(* ------------------------------------------------------------------ *)
(* Breakdown policies                                                  *)

(* 2x2 with structurally present but zero diagonal in row 0: the first
   pivot breaks down. *)
let breakdown_matrix () =
  Csr.create ~n_rows:2 ~n_cols:2 ~row_ptr:[| 0; 2; 4 |]
    ~col_idx:[| 0; 1; 0; 1 |]
    ~values:[| 0.0; 1.0; 1.0; 2.0 |]

let test_breakdown_policies () =
  let a = breakdown_matrix () in
  let blocking = scalar_blocking 2 in
  let r = rhs_for 2 in
  (* Identity fallback: matches the scalar path bitwise. *)
  let p, info = Block_ilu0.create ~blocking a in
  Alcotest.(check int) "identity: info flags row 0" 1
    info.Block_ilu0.factor_info;
  Alcotest.(check (list int)) "identity: degraded" [ 0 ]
    info.Block_ilu0.degraded_blocks;
  let f, _ = Ilu0.factorize a in
  check_bitwise "identity parity with scalar" (Ilu0.solve f r)
    (Preconditioner.apply p r);
  (* Perturb: salvaged by the diagonal shift, matching the scalar shift. *)
  let eps = 0.5 in
  let pp, pinfo =
    Block_ilu0.create ~blocking ~policy:(Block_jacobi.Perturb eps) a
  in
  Alcotest.(check int) "perturb: info flags row 0" 1
    pinfo.Block_ilu0.factor_info;
  (* The shifted pivot 0.5 propagates: row 1's update becomes 2 - 2·1 = 0,
     so it breaks down (and is salvaged) too — exactly like the scalar
     path, which the bitwise parity below confirms. *)
  Alcotest.(check (list int)) "perturb: salvaged" [ 0; 1 ]
    pinfo.Block_ilu0.perturbed_blocks;
  Alcotest.(check (list int)) "perturb: nothing degraded" []
    pinfo.Block_ilu0.degraded_blocks;
  let fp, _ = Ilu0.factorize ~policy:(Block_jacobi.Perturb eps) a in
  check_bitwise "perturb parity with scalar" (Ilu0.solve fp r)
    (Preconditioner.apply pp r);
  (* Fail: raises after setup with the offending block. *)
  match Block_ilu0.create ~blocking ~policy:Block_jacobi.Fail a with
  | exception Block_ilu0.Singular_block { block } ->
    Alcotest.(check int) "fail: block index" 0 block
  | _ -> Alcotest.fail "Fail policy did not raise"

(* ------------------------------------------------------------------ *)
(* Restricted additive Schwarz                                         *)

let test_ras_single_domain_is_create () =
  let a = Vblu_workloads.Generators.convection_diffusion_2d ~nx:8 ~ny:7 () in
  let n, _ = Csr.dims a in
  let p, _ = Block_ilu0.create ~max_block_size:8 a in
  let pr, rinfo =
    Block_ilu0.ras ~max_block_size:8 ~subdomains:1 ~overlap:0 a
  in
  Alcotest.(check int) "one subdomain" 1 rinfo.Block_ilu0.subdomains;
  Alcotest.(check (array (pair int int))) "owns everything" [| (0, n) |]
    rinfo.Block_ilu0.owned;
  let r = rhs_for n in
  check_bitwise "ras(1,0) == create" (Preconditioner.apply p r)
    (Preconditioner.apply pr r)

let test_ras_partition_and_determinism () =
  let a = Vblu_workloads.Generators.laplacian_2d ~nx:9 ~ny:8 () in
  let n, _ = Csr.dims a in
  let pr, rinfo =
    Block_ilu0.ras ~max_block_size:8 ~subdomains:4 ~overlap:3 a
  in
  Alcotest.(check int) "subdomains" 4 rinfo.Block_ilu0.subdomains;
  (* Owned ranges tile [0, n). *)
  let covered = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      Alcotest.(check int) "contiguous" !covered lo;
      covered := hi)
    rinfo.Block_ilu0.owned;
  Alcotest.(check int) "covers all rows" n !covered;
  (* Extended ranges contain the owned ones by <= overlap rows. *)
  Array.iteri
    (fun d (elo, ehi) ->
      let lo, hi = rinfo.Block_ilu0.owned.(d) in
      Alcotest.(check bool) "extends left" true (elo <= lo && lo - elo <= 3);
      Alcotest.(check bool) "extends right" true (ehi >= hi && ehi - hi <= 3))
    rinfo.Block_ilu0.extended;
  let r = rhs_for n in
  check_bitwise "ras apply deterministic" (Preconditioner.apply pr r)
    (Preconditioner.apply pr r);
  Alcotest.(check int) "local infos" 4
    (Array.length rinfo.Block_ilu0.local_info)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ qcheck_scalar_equivalence ]

let () =
  Alcotest.run "block_ilu0"
    [
      ( "levels",
        [
          Alcotest.test_case "chain" `Quick test_levels_chain;
          Alcotest.test_case "block tridiagonal" `Quick
            test_levels_block_tridiagonal;
          Alcotest.test_case "suite invariants" `Slow test_levels_suite;
        ] );
      ( "scalar equivalence",
        [
          Alcotest.test_case "fixed matrices" `Quick
            test_scalar_equivalence_fixed;
        ] );
      ( "bit identity",
        [
          Alcotest.test_case "domains x layouts" `Quick
            test_apply_bit_identical_domains_layouts;
        ] );
      ( "waves",
        [ Alcotest.test_case "accounting" `Quick test_wave_accounting ] );
      ( "golden parity",
        [
          Alcotest.test_case "block-diagonal == block-Jacobi" `Quick
            test_block_diagonal_parity;
        ] );
      ( "breakdown",
        [ Alcotest.test_case "policies" `Quick test_breakdown_policies ] );
      ( "ras",
        [
          Alcotest.test_case "single domain == create" `Quick
            test_ras_single_domain_is_create;
          Alcotest.test_case "partition and determinism" `Quick
            test_ras_partition_and_determinism;
        ] );
      ("properties", qcheck_tests);
    ]
