(* The benchmark harness.

   Two layers, both produced by one executable:

   1. Bechamel microbenchmarks of the host-side (CPU-reference) kernels —
      one Test.make per paper table/figure, measuring the computational
      piece that experiment exercises (factorizations for Figures 4-5,
      triangular solves for Figures 6-7, preconditioner setup/apply and
      IDR iterations for Figures 8-9 / Table I).

   2. The paper-shaped experiment outputs: every figure and table of the
      evaluation section, regenerated through the SIMT performance model
      (Figures 4-7 and kernel ablations) and through real solver runs
      (Figures 8-9, Table I, variant ablation).

   Set VBLU_BENCH_FULL=1 for the full-size sweeps (40,000-problem batches,
   all 48 matrices); the default is a quick pass of the same pipelines.

   Usage: main.exe [TARGET] [--domains N] [--breakdown-policy POLICY]

   TARGET selects one experiment (micro, fig4..fig9, table1, ablations);
   with no target everything runs, as before.  --domains N fans the sweeps
   out over N host domains — the printed numbers are bit-identical for any
   N, only the wall-clock changes.  --breakdown-policy (fail | identity |
   perturb:EPS, default identity) selects the block-Jacobi handling of
   singular diagonal blocks in the solver runs.  --inject-faults SPEC
   plants deterministic soft errors in the solver-study preconditioner
   setups (see Fault.Plan.of_spec for the SPEC grammar), --abft turns on
   checksum verification, and --recovery-policy (recompute[:N] | degrade
   | fail, default recompute:1) picks what to do with flagged blocks.
   --layout (blocked | interleaved, default blocked) selects the batch
   storage layout the figure sweeps run in; the host-throughput target
   always measures both and emits them as "host.layout/*" entries.

   The "artifact" target (or --json FILE with any target) additionally
   runs the fixed kernel sweep behind Kernel_figs.bench_points and writes
   a schema-versioned, machine-readable benchmark artifact
   (BENCH_kernels.json by default) for vblu_cli bench-compare. *)

open Bechamel
open Vblu_smallblas
open Vblu_core

let full = Sys.getenv_opt "VBLU_BENCH_FULL" = Some "1"

(* ------------------------------------------------------------------ *)
(* Layer 1: bechamel microbenchmarks                                    *)

let small_batch size =
  let st = Random.State.make [| 0xbec |] in
  Batch.of_matrices (Array.init 32 (fun _ -> Matrix.random_general ~state:st size))

let micro_tests () =
  let b16 = small_batch 16 and b32 = small_batch 32 in
  let m32 = Batch.to_matrices b32 in
  let m16 = Batch.to_matrices b16 in
  let rhs32 = Batch.vec_random b32.Batch.sizes in
  let factors32 = Array.map Lu.factor_implicit m32 in
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:100 ~vars_per_node:4 () in
  let n, _ = Vblu_sparse.Csr.dims a in
  let ones = Array.make n 1.0 in
  let precond, _ = Vblu_precond.Block_jacobi.create ~max_block_size:16 a in
  [
    (* Figure 4/5 — the factorization kernels (host reference numerics). *)
    Test.make ~name:"fig4_5/getrf_lu_16"
      (Staged.stage (fun () -> Array.map Lu.factor_implicit m16));
    Test.make ~name:"fig4_5/getrf_lu_32"
      (Staged.stage (fun () -> Array.map Lu.factor_implicit m32));
    Test.make ~name:"fig4_5/getrf_gh_32"
      (Staged.stage (fun () -> Array.map (fun m -> Gauss_huard.factor m) m32));
    Test.make ~name:"fig4_5/getrf_gje_32"
      (Staged.stage (fun () -> Array.map Gauss_jordan.invert m32));
    (* Figure 6/7 — the triangular solves. *)
    Test.make ~name:"fig6_7/trsv_batch_32"
      (Staged.stage (fun () ->
           Array.mapi
             (fun i f -> Lu.solve f (Batch.vec_get rhs32 i))
             factors32));
    (* Figures 8-9 / Table I — preconditioner setup and application, and
       one full preconditioned solve. *)
    Test.make ~name:"fig8_9/bj_setup_16"
      (Staged.stage (fun () ->
           Vblu_precond.Block_jacobi.create ~max_block_size:16 a));
    Test.make ~name:"fig8_9/bj_apply_16"
      (Staged.stage (fun () -> Vblu_precond.Preconditioner.apply precond ones));
    Test.make ~name:"table1/idr4_solve"
      (Staged.stage (fun () -> Vblu_krylov.Idr.solve ~precond ~s:4 a ones));
    (* Substrate: the sparse product every iteration pays. *)
    Test.make ~name:"substrate/spmv"
      (Staged.stage (fun () -> Vblu_sparse.Csr.spmv a ones));
    (* Extensions: Cholesky (future work), GEMM (batched BLAS), ILU(0). *)
    Test.make ~name:"ablations/cholesky_32"
      (Staged.stage
         (let spd =
            Array.map
              (fun m ->
                let p = Matrix.matmul m (Matrix.transpose m) in
                Matrix.init 32 32 (fun i j ->
                    Matrix.get p i j +. if i = j then 32.0 else 0.0))
              m32
          in
          fun () -> Array.map Cholesky.factor spd));
    Test.make ~name:"ablations/gemm_32"
      (Staged.stage (fun () ->
           Array.map (fun m -> Matrix.matmul m m) m32));
    Test.make ~name:"ablations/ilu0_setup"
      (Staged.stage (fun () -> Vblu_precond.Ilu0.factorize a));
  ]

(* Run a list of Bechamel tests and return (name, ns per run) estimates. *)
let measure_ns tests =
  let suite = Test.make_grouped ~name:"vblu" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if full then 1.0 else 0.25))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] suite in
  let results = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name r acc ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

let run_micro () =
  Printf.printf "\n## Bechamel microbenchmarks (host CPU, ns per run)\n";
  List.iter
    (fun (name, est) -> Printf.printf "%-28s %14.1f ns\n" name est)
    (measure_ns (micro_tests ()))

(* ------------------------------------------------------------------ *)
(* Layer 1b: host throughput of the SIMT engine hot path.

   Unlike the modelled GFLOPS (layer 2), this measures real wall-clock of
   the warp interpreter itself — the quantity the zero-allocation engine
   work optimizes.  Reported as ns per launch and problems per second;
   emitted as "host.getrf"/"host.trsv" artifact entries whose [gflops]
   field carries millions of problems per second (the gated quantity) and
   whose [bandwidth_gbs] field is unused (zero). *)

let host_sizes = if full then [ 4; 8; 16; 24; 32 ] else [ 8; 16; 32 ]
let host_batch = if full then 2048 else 256

let host_points () =
  List.concat_map
    (fun (prec, pname) ->
      List.concat_map
        (fun size ->
          let st = Random.State.make [| 0x0157; size |] in
          let b =
            Batch.of_matrices
              (Array.init host_batch (fun _ ->
                   Matrix.random_general ~state:st size))
          in
          let rhs = Batch.vec_random ~state:st b.Batch.sizes in
          let f = Batched_lu.factor ~prec b in
          [
            ( "host.getrf", pname, size,
              Test.make
                ~name:(Printf.sprintf "host.getrf/%s/n%d" pname size)
                (Staged.stage (fun () -> Batched_lu.factor ~prec b)) );
            ( "host.trsv", pname, size,
              Test.make
                ~name:(Printf.sprintf "host.trsv/%s/n%d" pname size)
                (Staged.stage (fun () ->
                     Batched_trsv.solve ~prec
                       ~factors:f.Batched_lu.factors
                       ~pivots:f.Batched_lu.pivots rhs)) );
          ])
        (match prec with
        | Precision.Double -> host_sizes
        | _ -> [ List.fold_left max 0 host_sizes ]))
    [ (Precision.Double, "fp64"); (Precision.Single, "fp32") ]

(* Layout throughput: the same engine hot path in both storage layouts —
   the host-side cost of cohort-strided element access that the modelled
   transaction savings must be weighed against.  Emitted as
   "host.layout/<kernel>.<layout>" entries (fp64 only) so bench-compare
   gates both layouts' throughput. *)
let host_layout_points () =
  List.concat_map
    (fun layout ->
      let lname = Batch.layout_name layout in
      List.concat_map
        (fun size ->
          let st = Random.State.make [| 0x1a70; size |] in
          let sizes = Array.make host_batch size in
          let b = Batch.random_diagdom ~state:st ~layout sizes in
          let rhs = Batch.vec_random ~state:st ~layout sizes in
          let f = Batched_lu.factor b in
          let point kernel stage =
            ( Printf.sprintf "host.layout/%s.%s" kernel lname, "fp64", size,
              Test.make
                ~name:
                  (Printf.sprintf "host.layout/%s.%s/fp64/n%d" kernel lname
                     size)
                (Staged.stage stage) )
          in
          [
            point "getrf" (fun () -> Batched_lu.factor b);
            point "trsv" (fun () ->
                Batched_trsv.solve ~factors:f.Batched_lu.factors
                  ~pivots:f.Batched_lu.pivots rhs);
          ])
        host_sizes)
    [ Batch.Blocked; Batch.Interleaved ]

let run_host_throughput ~domains ~json () =
  let points = host_points () @ host_layout_points () in
  (* Start from a cold stats cache so the direct-hit tally below reflects
     this run alone, not leftovers from warm-up launches. *)
  Vblu_simt.Launch.Cache.clear ();
  let measured = measure_ns (List.map (fun (_, _, _, t) -> t) points) in
  let hits, misses = Vblu_simt.Launch.Cache.stats () in
  let direct = Vblu_simt.Launch.Cache.direct_hits () in
  let lookups = hits + misses in
  let direct_fraction =
    if lookups = 0 then 0.0 else float_of_int direct /. float_of_int lookups
  in
  let ns_of kernel pname size =
    let suffix = Printf.sprintf "%s/%s/n%d" kernel pname size in
    List.find_map
      (fun (name, ns) ->
        let ln = String.length name and ls = String.length suffix in
        if ln >= ls && String.sub name (ln - ls) ls = suffix then Some ns
        else None)
      measured
  in
  Printf.printf
    "\n## Host throughput (engine wall-clock, batch = %d problems)\n"
    host_batch;
  Printf.printf "%-12s %-6s %4s %14s %16s\n" "kernel" "prec" "n" "ns/launch"
    "problems/sec";
  let entries =
    List.filter_map
      (fun (kernel, pname, size, _) ->
        match ns_of kernel pname size with
        | None -> None
        | Some ns ->
          let problems_per_sec = float_of_int host_batch /. (ns *. 1e-9) in
          Printf.printf "%-12s %-6s %4d %14.0f %16.0f\n" kernel pname size ns
            problems_per_sec;
          Some
            {
              Vblu_obs.Artifact.kernel;
              prec = pname;
              size;
              batch = host_batch;
              gflops = problems_per_sec /. 1e6;
              bandwidth_gbs = 0.0;
              time_us = ns /. 1000.0;
            })
      points
  in
  Printf.printf
    "direct fast path: %d of %d cache lookups served without the \
     interpreter (%.1f%%)\n"
    direct lookups (100.0 *. direct_fraction);
  (* The direct-hit fraction rides along as a pseudo-entry so the CI gate
     (vblu_cli bench-compare on the gflops field) fails loudly if the fast
     path silently stops being taken; the raw hit count goes into
     [bandwidth_gbs] as an informational payload. *)
  let entries =
    entries
    @ [
        {
          Vblu_obs.Artifact.kernel = "host.cache";
          prec = "direct-fraction";
          size = 0;
          batch = host_batch;
          gflops = direct_fraction;
          bandwidth_gbs = float_of_int direct;
          time_us = 0.0;
        };
      ]
  in
  let file = Option.value json ~default:"BENCH_host.json" in
  let art =
    Vblu_obs.Artifact.make ~target:"host-throughput" ~config:"p100" ~domains
      ~quick:(not full) entries
  in
  Vblu_obs.Artifact.write file art;
  Printf.eprintf "[bench] wrote %s (%d entries)\n%!" file (List.length entries)

(* ------------------------------------------------------------------ *)
(* Service throughput: the coalescing solver service under a load sweep.

   Drives lib/serve's deterministic loadgen at several offered-load
   multipliers and reports goodput, shed rate, tail latency and
   coalesced-batch occupancy — all in modelled (virtual) time, so the
   numbers are bit-identical across runs and domain counts and can be
   gated by bench-compare.  Emitted as "serve.goodput" entries whose
   [gflops] field carries completed requests per virtual millisecond
   (the gated quantity), [bandwidth_gbs] the shed+reject rate and
   [time_us] the p99 latency; a "serve.cache" pseudo-entry rides along
   with the launch-cache hit rate. *)

let serve_loads = [ 0.5; 1.0; 1.5; 2.0 ]
let serve_requests = if full then 2000 else 400

let run_serve ~domains ~json () =
  let pool = Vblu_par.Pool.create ~num_domains:domains () in
  let config =
    { Vblu_serve.Service.default_config with
      Vblu_serve.Service.capacity = 64; max_batch = 16; min_fill = 4 }
  in
  Vblu_simt.Launch.Cache.clear ();
  Printf.printf "\n## Service throughput (%d requests per point)\n"
    serve_requests;
  Printf.printf "%-6s %12s %10s %12s %12s %10s\n" "load" "goodput/ms"
    "shed-rate" "p50(ms)" "p99(ms)" "occupancy";
  let entries =
    List.map
      (fun load ->
        let spec =
          { Vblu_serve.Loadgen.default_spec with
            Vblu_serve.Loadgen.requests = serve_requests;
            load;
            deadline_windows = 16.0 }
        in
        let r = Vblu_serve.Loadgen.run ~pool ~config spec in
        if
          not
            (r.Vblu_serve.Loadgen.accounted
            && r.Vblu_serve.Loadgen.within_bound
            && r.Vblu_serve.Loadgen.verified)
        then begin
          Printf.eprintf "[bench] serve: robustness contract violated\n%!";
          exit 1
        end;
        let goodput_ms = r.Vblu_serve.Loadgen.goodput /. 1e3 in
        Printf.printf "%-6.2f %12.2f %10.3f %12.4f %12.4f %10.3f\n" load
          goodput_ms r.Vblu_serve.Loadgen.shed_rate
          (r.Vblu_serve.Loadgen.p50_latency *. 1e3)
          (r.Vblu_serve.Loadgen.p99_latency *. 1e3)
          r.Vblu_serve.Loadgen.mean_occupancy;
        {
          Vblu_obs.Artifact.kernel = "serve.goodput";
          prec = Printf.sprintf "load-%.2f" load;
          size = 0;
          batch = serve_requests;
          gflops = goodput_ms;
          bandwidth_gbs = r.Vblu_serve.Loadgen.shed_rate;
          time_us = r.Vblu_serve.Loadgen.p99_latency *. 1e6;
        })
      serve_loads
  in
  let hits, misses = Vblu_simt.Launch.Cache.stats () in
  let lookups = hits + misses in
  let hit_rate =
    if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups
  in
  Printf.printf "launch cache over the sweep: %d hits / %d misses (%.1f%%)\n"
    hits misses (100.0 *. hit_rate);
  let entries =
    entries
    @ [
        {
          Vblu_obs.Artifact.kernel = "serve.cache";
          prec = "hit-rate";
          size = 0;
          batch = serve_requests;
          gflops = hit_rate;
          bandwidth_gbs = float_of_int hits;
          time_us = 0.0;
        };
      ]
  in
  let file = Option.value json ~default:"BENCH_serve.json" in
  let art =
    Vblu_obs.Artifact.make ~target:"serve" ~config:"p100" ~domains
      ~quick:(not full) entries
  in
  Vblu_obs.Artifact.write file art;
  Printf.eprintf "[bench] wrote %s (%d entries)\n%!" file (List.length entries)

(* The preconditioner-family head-to-head (ROADMAP item 3): block-Jacobi
   vs block-ILU(0) vs RAS-ILU(0) over the workload suite, through
   Precond_study.  One artifact entry per (matrix, family); the gated
   [gflops] field carries 1000/iterations (fewer IDR(4) iterations =
   higher number, so convergence regressions fail bench-compare),
   [bandwidth_gbs] the modelled microseconds per application and
   [time_us] the setup+solve wall-clock.  Two pseudo-entries gate the
   head-to-head itself: the fraction of matrices (and of the
   convection-dominated subset) where block-ILU(0) reduced iterations. *)

let run_precond ~domains ~json () =
  let module PS = Vblu_perf.Precond_study in
  let module S = Vblu_workloads.Suite in
  let pool = Vblu_par.Pool.create ~num_domains:domains () in
  let progress msg = Printf.eprintf "[suite] %s\n%!" msg in
  let study = PS.run_suite ~quick:(not full) ~pool ~progress () in
  Printf.printf "\n## Preconditioner families (block size %d)\n"
    study.PS.max_block_size;
  Printf.printf "%-3s %-18s %-12s %6s %5s %6s %9s %9s\n" "id" "matrix"
    "family" "iters" "waves" "levels" "tx/apply" "us/apply";
  let entries =
    List.map
      (fun (r : PS.run) ->
        Printf.printf "%3d %-18s %-12s %5d%s %5d %3d+%-3d %9d %9.2f\n"
          r.PS.entry.S.id r.PS.entry.S.name
          (PS.family_label r.PS.family)
          r.PS.iterations
          (if r.PS.converged then " " else "*")
          r.PS.apply_waves r.PS.lower_levels r.PS.upper_levels
          r.PS.apply_transactions
          (r.PS.modelled_apply_seconds *. 1e6);
        {
          Vblu_obs.Artifact.kernel = "precond." ^ PS.family_label r.PS.family;
          prec = r.PS.entry.S.name;
          size = r.PS.entry.S.id;
          batch = r.PS.blocks;
          gflops = 1e3 /. float_of_int (max 1 r.PS.iterations);
          bandwidth_gbs = r.PS.modelled_apply_seconds *. 1e6;
          time_us = PS.total_seconds r *. 1e6;
        })
      study.PS.runs
  in
  let pairs = PS.iteration_improvements study in
  let better ((j : PS.run), (i : PS.run)) = i.PS.iterations < j.PS.iterations in
  let ratio pairs =
    match pairs with
    | [] -> 0.0
    | _ ->
      float_of_int (List.length (List.filter better pairs))
      /. float_of_int (List.length pairs)
  in
  let conv =
    List.filter (fun ((j : PS.run), _) -> j.PS.entry.S.family = S.Convection)
      pairs
  in
  Printf.printf
    "block-ilu0 reduced iterations on %d/%d matrices (%d/%d convection)\n"
    (List.length (List.filter better pairs))
    (List.length pairs)
    (List.length (List.filter better conv))
    (List.length conv);
  let pseudo kernel prec value =
    {
      Vblu_obs.Artifact.kernel;
      prec;
      size = 0;
      batch = List.length pairs;
      gflops = value;
      bandwidth_gbs = 0.0;
      time_us = 0.0;
    }
  in
  let entries =
    entries
    @ [
        pseudo "precond.improved" "all-matrices" (ratio pairs);
        pseudo "precond.improved" "convection" (ratio conv);
      ]
  in
  let file = Option.value json ~default:"BENCH_precond.json" in
  let art =
    Vblu_obs.Artifact.make ~target:"precond" ~config:"p100" ~domains
      ~quick:(not full) entries
  in
  Vblu_obs.Artifact.write file art;
  Printf.eprintf "[bench] wrote %s (%d entries)\n%!" file (List.length entries)

(* Amortized preconditioner setup over a time-stepping workload: the
   drifting convection-diffusion driver re-solved under each refresh
   policy, full vs partial refactorization.  All numbers are modelled
   (virtual) time and transaction counts, bit-identical across runs and
   domain counts, so bench-compare can gate them.  One entry per
   (family, policy): the gated [gflops] field carries setup efficiency
   (1e6 / setup transactions — a partial-refresh regression that
   refactors more blocks lowers it and fails the gate), [bandwidth_gbs]
   the total IDR(4) iterations and [time_us] the modelled setup seconds.
   A "timestep.amortization" pseudo-entry per family gates the
   full/partial transaction ratio itself. *)

let timestep_steps = if full then 40 else 12
let timestep_grid = if full then 24 else 16

let run_timestep ~domains ~json () =
  let module T = Vblu_workloads.Timestep in
  let pool = Vblu_par.Pool.create ~num_domains:domains () in
  let nx = timestep_grid and ny = timestep_grid in
  let policies =
    [
      ("full-every-step", T.Every_step, T.Full);
      ("partial-every-step", T.Every_step, T.Partial 0.0);
      ("partial-every-4", T.Every_k 4, T.Partial 0.0);
      ("partial-on-stall", T.On_stall { iters_growth = 8 }, T.Partial 0.0);
    ]
  in
  Printf.printf "\n## Time-stepping amortization (%dx%d grid, %d steps)\n" nx
    ny timestep_steps;
  Printf.printf "%-7s %-20s %9s %9s %7s %10s %10s\n" "family" "policy"
    "setup-tx" "launches" "iters" "residual" "checksum";
  let entries =
    List.concat_map
      (fun family ->
        let fname = T.family_name family in
        let results =
          List.map
            (fun (pname, refresh, mode) ->
              let r =
                T.run ~pool ~nx ~ny ~steps:timestep_steps ~family ~refresh
                  ~mode ()
              in
              Printf.printf "%-7s %-20s %9d %9d %7d %10.3e %10.6f\n" fname
                pname r.T.total_setup_transactions r.T.total_launches
                r.T.total_iterations r.T.final_residual r.T.solution_checksum;
              (pname, r))
            policies
        in
        let tx name =
          let _, r = List.find (fun (p, _) -> p = name) results in
          float_of_int (max 1 r.T.total_setup_transactions)
        in
        let full_tx = tx "full-every-step"
        and partial_tx = tx "partial-every-step" in
        let full_r = snd (List.hd results) in
        let partial_r = snd (List.nth results 1) in
        (* Partial refresh at tol 0 must track the full baseline bitwise;
           fail the bench run loudly if the contract ever breaks. *)
        if
          Int64.bits_of_float partial_r.T.solution_checksum
          <> Int64.bits_of_float full_r.T.solution_checksum
        then begin
          Printf.eprintf
            "[bench] timestep: partial refresh diverged from full\n%!";
          exit 1
        end;
        Printf.printf "%-7s amortization: partial uses %.1f%% of full tx\n"
          fname
          (100.0 *. partial_tx /. full_tx);
        List.map
          (fun (pname, (r : T.result)) ->
            {
              Vblu_obs.Artifact.kernel = "timestep." ^ fname;
              prec = pname;
              size = timestep_grid;
              batch = timestep_steps;
              gflops = 1e6 /. float_of_int (max 1 r.T.total_setup_transactions);
              bandwidth_gbs = float_of_int r.T.total_iterations;
              time_us = r.T.total_setup_modelled_seconds *. 1e6;
            })
          results
        @ [
            {
              Vblu_obs.Artifact.kernel = "timestep.amortization";
              prec = fname;
              size = timestep_grid;
              batch = timestep_steps;
              gflops = full_tx /. partial_tx;
              bandwidth_gbs = 0.0;
              time_us = 0.0;
            };
          ])
      [ T.Jacobi; T.Ilu0 ]
  in
  let file = Option.value json ~default:"BENCH_timestep.json" in
  let art =
    Vblu_obs.Artifact.make ~target:"timestep" ~config:"p100" ~domains
      ~quick:(not full) entries
  in
  Vblu_obs.Artifact.write file art;
  Printf.eprintf "[bench] wrote %s (%d entries)\n%!" file (List.length entries)

(* ------------------------------------------------------------------ *)
(* Layer 2: the paper's figures and tables                              *)

let targets =
  [ "micro"; "host-throughput"; "serve"; "precond"; "timestep"; "fig4";
    "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "table1"; "ablations";
    "artifact"; "all" ]

let usage () =
  Printf.eprintf
    "usage: %s [%s] [--domains N] [--breakdown-policy \
     fail|identity|perturb:EPS] [--inject-faults SPEC] [--abft] \
     [--recovery-policy recompute[:N]|degrade|fail] \
     [--layout blocked|interleaved] [--json FILE]\n"
    Sys.argv.(0)
    (String.concat "|" targets);
  exit 2

let parse_policy s =
  match String.lowercase_ascii s with
  | "fail" -> Some Vblu_precond.Block_jacobi.Fail
  | "identity" -> Some Vblu_precond.Block_jacobi.Identity_block
  | s when String.length s > 8 && String.sub s 0 8 = "perturb:" -> (
    match float_of_string_opt (String.sub s 8 (String.length s - 8)) with
    | Some eps when eps > 0.0 -> Some (Vblu_precond.Block_jacobi.Perturb eps)
    | _ -> None)
  | _ -> None

let parse_recovery s =
  let module Bj = Vblu_precond.Block_jacobi in
  match String.lowercase_ascii s with
  | "recompute" -> Some (Bj.Recompute 1)
  | "degrade" -> Some Bj.Degrade_to_identity
  | "fail" -> Some (Bj.Fail : Bj.recovery_policy)
  | s when String.length s > 10 && String.sub s 0 10 = "recompute:" -> (
    match int_of_string_opt (String.sub s 10 (String.length s - 10)) with
    | Some n when n > 0 -> Some (Bj.Recompute n)
    | _ -> None)
  | _ -> None

let parse_faults s =
  match Vblu_fault.Fault.Plan.of_spec s with
  | Ok p -> Some p
  | Error msg ->
    Printf.eprintf "invalid --inject-faults spec: %s\n" msg;
    None

let parse_layout s = Result.to_option (Batch.layout_of_string s)

let parse_args () =
  let domains = ref (Domain.recommended_domain_count ()) in
  let policy = ref Vblu_precond.Block_jacobi.Identity_block in
  let faults = ref None in
  let abft = ref false in
  let recovery = ref (Vblu_precond.Block_jacobi.Recompute 1) in
  let json = ref None in
  let layout = ref Batch.Blocked in
  let target = ref "all" in
  let set parse store s rest go =
    match parse s with
    | Some v -> store v; go rest
    | None -> usage ()
  in
  let set_policy = set parse_policy (fun p -> policy := p) in
  let set_recovery = set parse_recovery (fun r -> recovery := r) in
  let set_faults = set parse_faults (fun p -> faults := Some p) in
  let set_layout = set parse_layout (fun l -> layout := l) in
  let prefixed arg name =
    (* "--name=value" -> Some "value" *)
    let p = "--" ^ name ^ "=" in
    let lp = String.length p in
    if String.length arg > lp && String.sub arg 0 lp = p then
      Some (String.sub arg lp (String.length arg - lp))
    else None
  in
  let rec go = function
    | [] -> ()
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some v when v >= 1 -> domains := v; go rest
      | _ -> usage ())
    | "--breakdown-policy" :: p :: rest -> set_policy p rest go
    | "--recovery-policy" :: p :: rest -> set_recovery p rest go
    | "--inject-faults" :: s :: rest -> set_faults s rest go
    | "--layout" :: l :: rest -> set_layout l rest go
    | "--json" :: f :: rest -> json := Some f; go rest
    | "--abft" :: rest -> abft := true; go rest
    | arg :: rest -> (
      match prefixed arg "domains" with
      | Some n -> (
        match int_of_string_opt n with
        | Some v when v >= 1 -> domains := v; go rest
        | _ -> usage ())
      | None -> (
        match prefixed arg "breakdown-policy" with
        | Some p -> set_policy p rest go
        | None -> (
          match prefixed arg "recovery-policy" with
          | Some p -> set_recovery p rest go
          | None -> (
            match prefixed arg "inject-faults" with
            | Some s -> set_faults s rest go
            | None -> (
              match prefixed arg "layout" with
              | Some l -> set_layout l rest go
              | None -> (
                match prefixed arg "json" with
                | Some f -> json := Some f; go rest
                | None when List.mem arg targets -> target := arg; go rest
                | None -> usage ()))))))
  in
  go (List.tl (Array.to_list Sys.argv));
  (!target, !domains, !policy, !faults, !abft, !recovery, !json, !layout)

let () =
  let target, domains, policy, faults, abft, recovery, json, layout =
    parse_args ()
  in
  let pool = Vblu_par.Pool.create ~num_domains:domains () in
  let ppf = Format.std_formatter in
  let quick = not full in
  let progress msg = Printf.eprintf "[suite] %s\n%!" msg in
  let study =
    lazy
      (Vblu_perf.Solver_study.run_suite ~quick ~pool ~policy ?faults ~abft
         ~recovery ~progress ())
  in
  let all = target = "all" in
  if all || target = "micro" then run_micro ();
  if target = "host-throughput" then run_host_throughput ~domains ~json ();
  if target = "serve" then run_serve ~domains ~json ();
  if target = "precond" then run_precond ~domains ~json ();
  if target = "timestep" then run_timestep ~domains ~json ();
  if all || target = "fig4" then
    Vblu_perf.Kernel_figs.fig4 ~quick ~pool ~layout ppf;
  if all || target = "fig5" then
    Vblu_perf.Kernel_figs.fig5 ~quick ~pool ~layout ppf;
  if all || target = "fig6" then
    Vblu_perf.Kernel_figs.fig6 ~quick ~pool ~layout ppf;
  if all || target = "fig7" then
    Vblu_perf.Kernel_figs.fig7 ~quick ~pool ~layout ppf;
  if all || target = "ablations" then begin
    Vblu_perf.Kernel_figs.ablation_pivot ~quick ~pool ppf;
    Vblu_perf.Kernel_figs.ablation_trsv ~quick ~pool ppf;
    Vblu_perf.Kernel_figs.ablation_extraction ~quick ~pool ppf;
    Vblu_perf.Kernel_figs.ablation_cholesky ~quick ~pool ppf;
    Vblu_perf.Kernel_figs.ablation_variable_size ~quick ~pool ppf;
    Vblu_perf.Kernel_figs.abft_overhead ~quick ~pool ppf;
    Vblu_perf.Kernel_figs.layout_sweep ~quick ~pool ppf
  end;
  if all || target = "fig8" then Vblu_perf.Solver_figs.fig8 ppf (Lazy.force study);
  if all || target = "fig9" then Vblu_perf.Solver_figs.fig9 ppf (Lazy.force study);
  if all || target = "table1" then
    Vblu_perf.Solver_figs.table1 ppf (Lazy.force study);
  if all then Vblu_perf.Solver_figs.ablation_variants ppf (Lazy.force study);
  if
    target = "artifact"
    || (json <> None && target <> "host-throughput" && target <> "serve"
       && target <> "precond" && target <> "timestep")
  then begin
    let file = Option.value json ~default:"BENCH_kernels.json" in
    let art =
      Vblu_perf.Kernel_figs.bench_artifact ~quick ~pool ~target:"kernels" ()
    in
    Vblu_obs.Artifact.write file art;
    Printf.eprintf "[bench] wrote %s (%d entries)\n%!" file
      (List.length art.Vblu_obs.Artifact.entries)
  end;
  Format.pp_print_flush ppf ()
