(* Command-line driver: regenerate any of the paper's figures/tables, list
   the workload suite, or solve a Matrix Market system with block-Jacobi
   preconditioned IDR(4). *)

open Cmdliner
open Vblu_perf

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning)

let quick_arg =
  let doc = "Run a reduced sweep (fewer batch sizes / matrices)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let domains_arg =
  let doc =
    "Host domains for parallel batch execution (default: the runtime's \
     recommended domain count).  Results are bit-identical for any value; \
     only wall-clock time changes."
  in
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "domains" ] ~docv:"N" ~doc)

let policy_conv =
  let parse s =
    let module Bj = Vblu_precond.Block_jacobi in
    match String.lowercase_ascii s with
    | "fail" -> Ok Bj.Fail
    | "identity" -> Ok Bj.Identity_block
    | s when String.length s > 8 && String.sub s 0 8 = "perturb:" -> (
      match float_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some eps when eps > 0.0 -> Ok (Bj.Perturb eps)
      | _ -> Error (`Msg "perturb epsilon must be a positive number"))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid breakdown policy %S: expected fail, identity, or \
               perturb:EPS"
              s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Vblu_precond.Block_jacobi.policy_name p)
  in
  Arg.conv (parse, print)

let policy_arg =
  let doc =
    "What to do with a singular diagonal block: $(b,fail) aborts, \
     $(b,identity) (default) leaves the block unpreconditioned, \
     $(b,perturb:EPS) retries after a diagonal shift of EPS times the \
     block's largest entry."
  in
  Arg.(
    value
    & opt policy_conv Vblu_precond.Block_jacobi.Identity_block
    & info [ "breakdown-policy" ] ~docv:"POLICY" ~doc)

let faults_conv =
  let parse s =
    match Vblu_fault.Fault.Plan.of_spec s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p =
    Format.pp_print_string ppf (Vblu_fault.Fault.Plan.to_spec p)
  in
  Arg.conv (parse, print)

let faults_arg =
  let doc =
    "Inject deterministic soft errors described by SPEC \
     (comma-separated $(b,seed=N), $(b,every=N), $(b,phase=N), \
     $(b,target=reg|smem|gmem), $(b,kind=flip:BIT|scale:F|set:F), \
     $(b,at=PROBLEM.STEP.LANE)).  Example: \
     $(b,--inject-faults seed=7,every=3)."
  in
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "inject-faults" ] ~docv:"SPEC" ~doc)

let abft_arg =
  let doc =
    "Verify factors with ABFT checksums and report per-problem verdicts \
     (checksum work is charged to the performance counters)."
  in
  Arg.(value & flag & info [ "abft" ] ~doc)

let recovery_conv =
  let parse s =
    let module Bj = Vblu_precond.Block_jacobi in
    match String.lowercase_ascii s with
    | "recompute" -> Ok (Bj.Recompute 1)
    | "degrade" -> Ok Bj.Degrade_to_identity
    | "fail" -> Ok (Bj.Fail : Bj.recovery_policy)
    | s when String.length s > 10 && String.sub s 0 10 = "recompute:" -> (
      match int_of_string_opt (String.sub s 10 (String.length s - 10)) with
      | Some n when n > 0 -> Ok (Bj.Recompute n)
      | _ -> Error (`Msg "recompute retry count must be a positive integer"))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "invalid recovery policy %S: expected recompute[:N], degrade, \
               or fail"
              s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Vblu_precond.Block_jacobi.recovery_name p)
  in
  Arg.conv (parse, print)

let recovery_arg =
  let doc =
    "What to do with a diagonal block whose ABFT check fails: \
     $(b,recompute[:N]) (default, N=1) refactorizes up to N times, \
     $(b,degrade) replaces the block with the identity, $(b,fail) \
     aborts with Fault_detected."
  in
  Arg.(
    value
    & opt recovery_conv (Vblu_precond.Block_jacobi.Recompute 1)
    & info [ "recovery-policy" ] ~docv:"POLICY" ~doc)

let pool_of n = Vblu_par.Pool.create ~num_domains:n ()
let ppf = Format.std_formatter

let trace_arg =
  let doc =
    "Record every kernel launch, preconditioner setup and solver iteration \
     into a Chrome-tracing JSON written to $(docv) (open it in Perfetto or \
     chrome://tracing).  Traces use modelled simulator time and are \
     bit-identical for any $(b,--domains) value."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (counters, gauges, histograms) to $(docv) \
     as JSON — or as CSV when $(docv) ends in $(b,.csv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Build the observability context for --trace/--metrics, run [f] with it,
   then flush the requested files.  With neither flag, [f] gets [None] and
   every instrumented call site stays on its no-op fast path. *)
let with_obs trace metrics f =
  match (trace, metrics) with
  | None, None -> f None
  | _ ->
    let tr = Option.map (fun _ -> Vblu_obs.Trace.create ()) trace in
    let mx = Option.map (fun _ -> Vblu_obs.Metrics.create ()) metrics in
    let r = f (Some (Vblu_obs.Ctx.v ?trace:tr ?metrics:mx ())) in
    Option.iter
      (fun file ->
        Option.iter (Vblu_obs.Trace.write file) tr;
        Printf.eprintf "[obs] wrote trace %s\n%!" file)
      trace;
    Option.iter
      (fun file ->
        Option.iter
          (fun m ->
            if Filename.check_suffix file ".csv" then begin
              let oc = open_out file in
              output_string oc (Vblu_obs.Metrics.to_csv m);
              close_out oc
            end
            else Vblu_obs.Metrics.write file m)
          mx;
        Printf.eprintf "[obs] wrote metrics %s\n%!" file)
      metrics;
    r

let kernel_cmd name doc driver =
  let run quick domains trace metrics =
    setup_logs ();
    with_obs trace metrics (fun obs ->
        driver ~quick ~pool:(pool_of domains) ?obs ppf);
    Format.pp_print_flush ppf ()
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ quick_arg $ domains_arg $ trace_arg $ metrics_arg)

let layout_conv =
  let parse s =
    match Vblu_core.Batch.layout_of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  let print ppf l =
    Format.pp_print_string ppf (Vblu_core.Batch.layout_name l)
  in
  Arg.conv (parse, print)

let layout_arg =
  let doc =
    "Batch storage layout: $(b,blocked) (default; matrices back-to-back) \
     or $(b,interleaved) (SoA cohorts — element i of every cohort member \
     contiguous, the coalesced layout).  Results are bit-identical; only \
     the modelled memory traffic changes."
  in
  Arg.(
    value
    & opt layout_conv Vblu_core.Batch.Blocked
    & info [ "layout" ] ~docv:"LAYOUT" ~doc)

(* Like [kernel_cmd] for the figure sweeps, which also take --layout. *)
let fig_cmd name doc driver =
  let run quick domains layout trace metrics =
    setup_logs ();
    with_obs trace metrics (fun obs ->
        driver ~quick ~pool:(pool_of domains) ?obs ~layout ppf);
    Format.pp_print_flush ppf ()
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ quick_arg $ domains_arg $ layout_arg $ trace_arg
      $ metrics_arg)

(* CI gate: run the variable-size LU / TRSV workloads in both layouts and
   fail unless the coalescing model reports strictly fewer gmem
   transactions for interleaved storage on every kernel. *)
let layout_check_cmd =
  let count =
    Arg.(
      value & opt int 64
      & info [ "count" ] ~docv:"N" ~doc:"Number of blocks in the workload.")
  in
  let run count =
    setup_logs ();
    let module B = Vblu_core.Batch in
    let module L = Vblu_simt.Launch in
    let sizes =
      B.random_sizes
        ~state:(Random.State.make [| 0x10c; 1 |])
        ~count ~min_size:5 ~max_size:30 ()
    in
    let txns (s : L.stats) = s.L.total.Vblu_simt.Counter.gmem_transactions in
    let measure layout =
      let st = Random.State.make [| 0x10c; 2 |] in
      let b = B.random_diagdom ~state:st ~layout sizes in
      let lu = Vblu_core.Batched_lu.factor b in
      let rhs = B.vec_random ~state:st ~layout sizes in
      let solve variant =
        Vblu_core.Batched_trsv.solve ~variant
          ~factors:lu.Vblu_core.Batched_lu.factors
          ~pivots:lu.Vblu_core.Batched_lu.pivots rhs
      in
      [
        ("getrf.lu", txns lu.Vblu_core.Batched_lu.stats);
        ( "trsv.eager",
          txns (solve Vblu_core.Batched_trsv.Eager).Vblu_core.Batched_trsv.stats
        );
        ( "trsv.lazy",
          txns (solve Vblu_core.Batched_trsv.Lazy).Vblu_core.Batched_trsv.stats
        );
      ]
    in
    let blocked = measure B.Blocked and interleaved = measure B.Interleaved in
    let ok = ref true in
    List.iter2
      (fun (kernel, b) (_, i) ->
        let pass = i < b in
        if not pass then ok := false;
        Printf.printf "%-10s blocked %12.0f  interleaved %12.0f  %.2fx  %s\n"
          kernel b i (b /. i)
          (if pass then "ok" else "FAIL"))
      blocked interleaved;
    if not !ok then begin
      Printf.eprintf
        "layout-check: interleaved storage did not reduce gmem transactions\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "layout-check"
       ~doc:
         "Assert the interleaved layout costs strictly fewer gmem \
          transactions than blocked on the variable-size LU/TRSV workloads \
          (exit 1 otherwise); the CI coalescing gate.")
    Term.(const run $ count)

let with_study quick domains policy faults abft recovery ?obs f =
  setup_logs ();
  let progress msg = Printf.eprintf "[suite] %s\n%!" msg in
  let study =
    Solver_study.run_suite ~quick ~pool:(pool_of domains) ~policy ?faults ~abft
      ~recovery ?obs ~progress ()
  in
  f study;
  Format.pp_print_flush ppf ()

let solver_cmd name doc driver =
  let run quick domains policy faults abft recovery trace metrics =
    with_obs trace metrics (fun obs ->
        with_study quick domains policy faults abft recovery ?obs (fun study ->
            driver ppf study))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ quick_arg $ domains_arg $ policy_arg $ faults_arg $ abft_arg
      $ recovery_arg $ trace_arg $ metrics_arg)

let suite_cmd =
  let run () =
    setup_logs ();
    List.iter
      (fun (e : Vblu_workloads.Suite.entry) ->
        let a = Vblu_workloads.Suite.matrix e in
        Format.printf "%2d %-18s %-14s %a@." e.Vblu_workloads.Suite.id
          e.Vblu_workloads.Suite.name
          (Vblu_workloads.Suite.family_name e.Vblu_workloads.Suite.family)
          Vblu_sparse.Csr.pp_stats a)
      Vblu_workloads.Suite.all
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"List the 48 synthetic stand-in matrices.")
    Term.(const run $ const ())

(* Shared knobs for the preconditioner-family commands. *)
let precond_arg =
  let family_conv =
    Arg.enum
      [
        ("block-jacobi", Precond_study.Jacobi);
        ("block-ilu0", Precond_study.Ilu0);
        ("ras-ilu0", Precond_study.Ras);
      ]
  in
  let doc =
    "Preconditioner family: $(b,block-jacobi) (default; decoupled \
     diagonal-block solves), $(b,block-ilu0) (coupled block incomplete LU \
     applied as level-scheduled batched triangular solves), or \
     $(b,ras-ilu0) (restricted additive Schwarz over block-ILU(0) \
     subdomain solves)."
  in
  Arg.(
    value
    & opt family_conv Precond_study.Jacobi
    & info [ "precond" ] ~docv:"FAMILY" ~doc)

let subdomains_arg =
  Arg.(
    value & opt int 4
    & info [ "subdomains" ] ~docv:"N"
        ~doc:"Contiguous RAS subdomains ($(b,ras-ilu0) only).")

let overlap_arg =
  Arg.(
    value & opt int 8
    & info [ "overlap" ] ~docv:"ROWS"
        ~doc:"Rows of one-sided RAS overlap ($(b,ras-ilu0) only).")

let report_ilu0 ?(indent = "  ") policy (info : Vblu_precond.Block_ilu0.info) =
  let module Bi = Vblu_precond.Block_ilu0 in
  let module L = Vblu_sparse.Levels in
  Format.printf "%slower: %a@." indent L.pp_stats (L.stats info.Bi.lower);
  Format.printf "%supper: %a@." indent L.pp_stats (L.stats info.Bi.upper);
  Format.printf "%ssetup: %d batched launches, %.1f us modelled@." indent
    info.Bi.setup_launches
    (info.Bi.setup_modelled_seconds *. 1e6);
  if info.Bi.degraded_blocks <> [] || info.Bi.perturbed_blocks <> [] then
    Format.printf
      "%sbreakdowns (policy %s): %d identity-fallback, %d perturbed@." indent
      (Vblu_precond.Block_jacobi.policy_name policy)
      (List.length info.Bi.degraded_blocks)
      (List.length info.Bi.perturbed_blocks);
  match !(info.Bi.last_apply) with
  | None -> ()
  | Some s ->
    let tx =
      Array.fold_left (fun acc w -> acc + w.Bi.transactions) 0 s.Bi.waves
    in
    Format.printf
      "%sapply: %d level waves, %d gmem transactions, %.1f us modelled@."
      indent
      (Array.length s.Bi.waves)
      tx
      (s.Bi.modelled_seconds *. 1e6)

let solve_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MATRIX.mtx" ~doc:"Matrix Market file to solve.")
  in
  let bound =
    Arg.(
      value & opt int 32
      & info [ "block-size" ] ~doc:"Supervariable agglomeration bound.")
  in
  let variant =
    let variant_conv =
      Arg.enum
        [
          ("lu", Vblu_precond.Block_jacobi.Lu);
          ("gh", Vblu_precond.Block_jacobi.Gh);
          ("gh-t", Vblu_precond.Block_jacobi.Ght);
          ("gje", Vblu_precond.Block_jacobi.Gje_inverse);
          ("cholesky", Vblu_precond.Block_jacobi.Cholesky);
          ("scalar", Vblu_precond.Block_jacobi.Scalar);
        ]
    in
    Arg.(
      value
      & opt variant_conv Vblu_precond.Block_jacobi.Lu
      & info [ "variant" ]
          ~doc:
            "Batched factorization variant for the preconditioner \
             ($(b,block-jacobi) only).")
  in
  let run file bound variant family subdomains overlap domains policy faults
      abft recovery trace metrics =
    setup_logs ();
    let a = Vblu_sparse.Mm_io.read file in
    let n, _ = Vblu_sparse.Csr.dims a in
    let b = Array.make n 1.0 in
    with_obs trace metrics @@ fun obs ->
    let pool = pool_of domains in
    Format.printf "matrix: %a@." Vblu_sparse.Csr.pp_stats a;
    let stats =
      match family with
      | Precond_study.Jacobi ->
        let make_precond () =
          Vblu_precond.Block_jacobi.create ~pool ~variant ~policy ?faults
            ~abft ~recovery ?obs ~max_block_size:bound a
        in
        let precond, info = make_precond () in
        let refresh_precond =
          if abft then Some (fun () -> fst (make_precond ())) else None
        in
        let _, stats =
          Vblu_krylov.Idr.solve ~precond ?refresh_precond ?obs ~s:4 a b
        in
        Format.printf "preconditioner: %s (%d blocks, setup %.3fs)@."
          precond.Vblu_precond.Preconditioner.name
          (Array.length
             info.Vblu_precond.Block_jacobi.blocking
               .Vblu_precond.Supervariable.starts)
          precond.Vblu_precond.Preconditioner.setup_seconds;
        let degraded = info.Vblu_precond.Block_jacobi.degraded_blocks
        and perturbed = info.Vblu_precond.Block_jacobi.perturbed_blocks
        and recovered = info.Vblu_precond.Block_jacobi.recovered_blocks
        and corrupt = info.Vblu_precond.Block_jacobi.corrupt_blocks in
        if degraded <> [] || perturbed <> [] then
          Format.printf
            "breakdowns (policy %s): %d identity-fallback, %d perturbed@."
            (Vblu_precond.Block_jacobi.policy_name policy)
            (List.length degraded) (List.length perturbed);
        (match faults with
        | None -> ()
        | Some plan ->
          let blocking = info.Vblu_precond.Block_jacobi.blocking in
          let planted =
            List.length
              (Vblu_fault.Fault.Plan.targeted plan
                 ~problems:
                   (Array.length blocking.Vblu_precond.Supervariable.starts)
                 ~sizes:blocking.Vblu_precond.Supervariable.sizes)
          in
          Format.printf
            "faults: planted=%d fired=%d detected=%d recovered=%d corrupt=%d@."
            planted
            (Vblu_fault.Fault.Plan.injected plan)
            (List.length recovered + List.length corrupt)
            (List.length recovered) (List.length corrupt));
        stats
      | Precond_study.Ilu0 ->
        let precond, info =
          Vblu_precond.Block_ilu0.create ~pool ~policy ?faults ~abft ?obs
            ~max_block_size:bound a
        in
        let _, stats = Vblu_krylov.Idr.solve ~precond ?obs ~s:4 a b in
        Format.printf "preconditioner: %s (%d blocks, setup %.3fs)@."
          precond.Vblu_precond.Preconditioner.name
          (Array.length
             info.Vblu_precond.Block_ilu0.blocking
               .Vblu_precond.Supervariable.starts)
          precond.Vblu_precond.Preconditioner.setup_seconds;
        report_ilu0 policy info;
        stats
      | Precond_study.Ras ->
        let precond, rinfo =
          Vblu_precond.Block_ilu0.ras ~pool ~policy ?faults ~abft ?obs
            ~max_block_size:bound ~subdomains ~overlap a
        in
        let _, stats = Vblu_krylov.Idr.solve ~precond ?obs ~s:4 a b in
        Format.printf "preconditioner: %s (setup %.3fs)@."
          precond.Vblu_precond.Preconditioner.name
          precond.Vblu_precond.Preconditioner.setup_seconds;
        Array.iteri
          (fun d (info : Vblu_precond.Block_ilu0.info) ->
            let lo, hi = rinfo.Vblu_precond.Block_ilu0.extended.(d) in
            Format.printf "  subdomain %d: rows [%d, %d), %d blocks@." d lo hi
              (Array.length
                 info.Vblu_precond.Block_ilu0.blocking
                   .Vblu_precond.Supervariable.starts);
            report_ilu0 ~indent:"    " policy info)
          rinfo.Vblu_precond.Block_ilu0.local_info;
        stats
    in
    Format.printf "IDR(4): %a@." Vblu_krylov.Solver.pp_stats stats
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Solve a Matrix Market system with IDR(4) under a block-Jacobi, \
          block-ILU(0), or RAS-ILU(0) preconditioner.")
    Term.(
      const run $ file $ bound $ variant $ precond_arg $ subdomains_arg
      $ overlap_arg $ domains_arg $ policy_arg $ faults_arg $ abft_arg
      $ recovery_arg $ trace_arg $ metrics_arg)

let levels_cmd =
  let bound =
    Arg.(
      value & opt int 16
      & info [ "block-size" ] ~doc:"Supervariable agglomeration bound.")
  in
  let matrix =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"MATRIX.mtx"
          ~doc:
            "Matrix Market file to analyse (default: the whole workload \
             suite).")
  in
  let scalar =
    Arg.(
      value & flag
      & info [ "scalar" ]
          ~doc:
            "Row-level analysis (uniform size-1 partition) instead of the \
             supervariable blocking.")
  in
  let run bound matrix scalar =
    setup_logs ();
    let module L = Vblu_sparse.Levels in
    let analyse name a =
      let lower, upper =
        if scalar then (L.scalar L.Lower a, L.scalar L.Upper a)
        else begin
          let blocking =
            Vblu_precond.Supervariable.blocking ~max_block_size:bound a
          in
          let starts = blocking.Vblu_precond.Supervariable.starts
          and sizes = blocking.Vblu_precond.Supervariable.sizes in
          ( L.schedule L.Lower ~starts ~sizes a,
            L.schedule L.Upper ~starts ~sizes a )
        end
      in
      Format.printf "%-22s lower %a@." name L.pp_stats (L.stats lower);
      Format.printf "%-22s upper %a@." "" L.pp_stats (L.stats upper)
    in
    match matrix with
    | Some file ->
      analyse (Filename.basename file) (Vblu_sparse.Mm_io.read file)
    | None ->
      List.iter
        (fun (e : Vblu_workloads.Suite.entry) ->
          analyse
            (Printf.sprintf "%2d %s" e.Vblu_workloads.Suite.id
               e.Vblu_workloads.Suite.name)
            (Vblu_workloads.Suite.matrix e))
        Vblu_workloads.Suite.all
  in
  Cmd.v
    (Cmd.info "levels"
       ~doc:
         "Level-set schedule statistics of the block-triangular solve DAGs \
          (batched waves per sweep, level widths, critical path) for a \
          matrix or the whole suite.")
    Term.(const run $ bound $ matrix $ scalar)

let precond_table ppf (study : Precond_study.t) =
  let module PS = Precond_study in
  let module S = Vblu_workloads.Suite in
  let entries =
    List.sort_uniq
      (fun (a : S.entry) b -> compare a.S.id b.S.id)
      (List.map (fun (r : PS.run) -> r.PS.entry) study.PS.runs)
  in
  Format.fprintf ppf "%-3s %-18s %-10s | %-16s | %-39s | %-16s@," "id"
    "matrix" "family" "block-jacobi" "block-ilu0" "ras-ilu0";
  Format.fprintf ppf
    "%-3s %-18s %-10s | %6s %9s | %6s %7s %5s %8s %9s | %6s %9s@," "" "" ""
    "iters" "us/apply" "iters" "lv(l+u)" "waves" "txns" "us/apply" "iters"
    "us/apply";
  let iters (r : PS.run) =
    Printf.sprintf "%5d%s" r.PS.iterations
      (if r.PS.converged then " " else "*")
  in
  List.iter
    (fun (e : S.entry) ->
      let j = PS.find study e PS.Jacobi
      and i = PS.find study e PS.Ilu0
      and r = PS.find study e PS.Ras in
      Format.fprintf ppf "%3d %-18s %-10s |" e.S.id e.S.name
        (S.family_name e.S.family);
      (match j with
      | Some j ->
        Format.fprintf ppf " %s %9.2f |" (iters j)
          (j.PS.modelled_apply_seconds *. 1e6)
      | None -> Format.fprintf ppf " %6s %9s |" "-" "-");
      (match i with
      | Some i ->
        Format.fprintf ppf " %s %3d+%-3d %5d %8d %9.2f |" (iters i)
          i.PS.lower_levels i.PS.upper_levels i.PS.apply_waves
          i.PS.apply_transactions
          (i.PS.modelled_apply_seconds *. 1e6)
      | None ->
        Format.fprintf ppf " %6s %7s %5s %8s %9s |" "-" "-" "-" "-" "-");
      match r with
      | Some r ->
        Format.fprintf ppf " %s %9.2f@," (iters r)
          (r.PS.modelled_apply_seconds *. 1e6)
      | None -> Format.fprintf ppf " %6s %9s@," "-" "-")
    entries

let improvement_summary ppf (study : Precond_study.t) =
  let module PS = Precond_study in
  let module S = Vblu_workloads.Suite in
  let pairs = PS.iteration_improvements study in
  let better ((j : PS.run), (i : PS.run)) = i.PS.iterations < j.PS.iterations in
  let improved = List.filter better pairs in
  let conv =
    List.filter
      (fun ((j : PS.run), _) -> j.PS.entry.S.family = S.Convection)
      pairs
  in
  let conv_improved = List.filter better conv in
  Format.fprintf ppf
    "block-ilu0 reduced IDR(4) iterations on %d/%d matrices (%d/%d \
     convection-dominated)@,"
    (List.length improved) (List.length pairs)
    (List.length conv_improved)
    (List.length conv)

let precond_cmd =
  let bound =
    Arg.(
      value & opt int 16
      & info [ "block-size" ]
          ~doc:"Supervariable agglomeration bound shared by every family.")
  in
  let run quick bound subdomains overlap domains policy trace metrics =
    setup_logs ();
    with_obs trace metrics @@ fun obs ->
    let progress msg = Printf.eprintf "[suite] %s\n%!" msg in
    let study =
      Precond_study.run_suite ~quick ~max_block_size:bound ~subdomains
        ~overlap ~pool:(pool_of domains) ~policy ?obs ~progress ()
    in
    Format.printf "@[<v>%a%a@]@." precond_table study improvement_summary
      study
  in
  Cmd.v
    (Cmd.info "precond"
       ~doc:
         "Head-to-head preconditioner-family study over the workload \
          suite: block-Jacobi vs block-ILU(0) vs RAS-ILU(0) — IDR(4) \
          iterations against modelled time per application (level waves \
          and their memory transactions).")
    Term.(
      const run $ quick_arg $ bound $ subdomains_arg $ overlap_arg
      $ domains_arg $ policy_arg $ trace_arg $ metrics_arg)

(* CI gate: block-ILU(0) apply must be bit-identical across domain counts
   and storage layouts, and the coupled factorization must actually buy
   iterations on the convection-dominated suite. *)
let precond_check_cmd =
  let run () =
    setup_logs ();
    let module Bi = Vblu_precond.Block_ilu0 in
    let module B = Vblu_core.Batch in
    let module G = Vblu_workloads.Generators in
    let failures = ref 0 in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          incr failures;
          Printf.printf "FAIL %s\n" msg)
        fmt
    in
    let mats =
      [
        ("fem_blocks", G.fem_blocks ~nodes:24 ~vars_per_node:4 ());
        ("convection_2d", G.convection_diffusion_2d ~nx:9 ~ny:8 ());
        ("block_tridiag", G.block_tridiagonal ~blocks:8 ~block_size:6 ());
      ]
    in
    List.iter
      (fun (name, a) ->
        let n, _ = Vblu_sparse.Csr.dims a in
        let r =
          Array.init n (fun i -> 1.0 +. (float_of_int (i mod 7) /. 7.0))
        in
        let apply domains layout =
          let precond, _ =
            Bi.create ~pool:(pool_of domains) ~layout ~max_block_size:16 a
          in
          Vblu_precond.Preconditioner.apply precond r
        in
        let reference = apply 1 B.Blocked in
        List.iter
          (fun (domains, layout) ->
            let y = apply domains layout in
            let same =
              Array.for_all2
                (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
                reference y
            in
            if same then
              Printf.printf "ok   %-14s bit-identical at domains=%d layout=%s\n"
                name domains (B.layout_name layout)
            else
              fail "%s: apply differs at domains=%d layout=%s" name domains
                (B.layout_name layout))
          [
            (2, B.Blocked);
            (4, B.Blocked);
            (1, B.Interleaved);
            (4, B.Interleaved);
          ])
      mats;
    let module S = Vblu_workloads.Suite in
    let module PS = Precond_study in
    let conv =
      List.filter (fun (e : S.entry) -> e.S.family = S.Convection) S.all
    in
    let study =
      PS.run_suite ~entries:conv ~families:[ PS.Jacobi; PS.Ilu0 ] ()
    in
    let pairs = PS.iteration_improvements study in
    let improved =
      List.filter
        (fun ((j : PS.run), (i : PS.run)) ->
          i.PS.iterations < j.PS.iterations)
        pairs
    in
    List.iter
      (fun ((j : PS.run), (i : PS.run)) ->
        Printf.printf
          "%-4s %-18s jacobi %4d  ilu0 %4d  waves %2d  tx %7d\n"
          (if i.PS.iterations < j.PS.iterations then "ok" else "warn")
          j.PS.entry.S.name j.PS.iterations i.PS.iterations i.PS.apply_waves
          i.PS.apply_transactions)
      pairs;
    if 2 * List.length improved < List.length pairs then
      fail "block-ilu0 reduced iterations on only %d/%d convection matrices"
        (List.length improved) (List.length pairs);
    if !failures > 0 then begin
      Printf.eprintf "precond-check: %d gate(s) failed\n" !failures;
      exit 1
    end
    else Printf.printf "precond-check: all gates passed\n"
  in
  Cmd.v
    (Cmd.info "precond-check"
       ~doc:
         "CI gate for the preconditioner families: assert block-ILU(0) \
          apply is bit-identical across $(b,--domains) values and storage \
          layouts, and that it reduces IDR(4) iterations vs block-Jacobi \
          on at least half the convection-dominated suite (exit 1 \
          otherwise).")
    Term.(const run $ const ())

let csv_cmd =
  let dir =
    Arg.(
      value & opt string "results"
      & info [ "dir" ] ~doc:"Directory to write the CSV files into.")
  in
  let run dir quick domains =
    setup_logs ();
    let pool = pool_of domains in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let slug title =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
          | _ -> '_')
        title
    in
    let dump series =
      List.iter
        (fun (s : Report.series) ->
          let path = Filename.concat dir (slug s.Report.title ^ ".csv") in
          let oc = open_out path in
          output_string oc (Report.csv_of_series s);
          close_out oc;
          Printf.printf "wrote %s\n" path)
        series
    in
    dump (Kernel_figs.fig4_series ~quick ~pool ());
    dump (Kernel_figs.fig5_series ~quick ~pool ());
    dump (Kernel_figs.fig6_series ~quick ~pool ());
    dump (Kernel_figs.fig7_series ~quick ~pool ())
  in
  Cmd.v
    (Cmd.info "csv"
       ~doc:"Export the Figure 4-7 data series as CSV files for plotting.")
    Term.(const run $ dir $ quick_arg $ domains_arg)

let all_cmd =
  let run quick domains policy faults abft recovery trace metrics =
    setup_logs ();
    let pool = pool_of domains in
    with_obs trace metrics @@ fun obs ->
    Kernel_figs.fig4 ~quick ~pool ?obs ppf;
    Kernel_figs.fig5 ~quick ~pool ?obs ppf;
    Kernel_figs.fig6 ~quick ~pool ?obs ppf;
    Kernel_figs.fig7 ~quick ~pool ?obs ppf;
    Kernel_figs.ablation_pivot ~quick ~pool ppf;
    Kernel_figs.ablation_trsv ~quick ~pool ppf;
    Kernel_figs.ablation_extraction ~quick ~pool ppf;
    Kernel_figs.ablation_cholesky ~quick ~pool ppf;
    Kernel_figs.ablation_variable_size ~quick ~pool ppf;
    Kernel_figs.abft_overhead ~quick ~pool ppf;
    with_study quick domains policy faults abft recovery ?obs (fun study ->
        Solver_figs.fig8 ppf study;
        Solver_figs.fig9 ppf study;
        Solver_figs.table1 ppf study;
        Solver_figs.ablation_variants ppf study)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure, table and ablation.")
    Term.(
      const run $ quick_arg $ domains_arg $ policy_arg $ faults_arg $ abft_arg
      $ recovery_arg $ trace_arg $ metrics_arg)

let bench_compare_cmd =
  let base =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASE" ~doc:"Baseline BENCH_*.json artifact.")
  in
  let cur =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current BENCH_*.json artifact.")
  in
  let tolerance =
    Arg.(
      value & opt float 5.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Maximum tolerated GFLOPS regression per entry, in percent. \
             Improvements and new entries never fail; entries present in \
             BASE but missing from CURRENT always fail.")
  in
  let run base cur tolerance =
    setup_logs ();
    match (Vblu_obs.Artifact.read base, Vblu_obs.Artifact.read cur) with
    | Error e, _ ->
      Printf.eprintf "bench-compare: %s: %s\n" base e;
      exit 2
    | _, Error e ->
      Printf.eprintf "bench-compare: %s: %s\n" cur e;
      exit 2
    | Ok b, Ok c ->
      let cmp = Vblu_obs.Artifact.compare ~tolerance_pct:tolerance ~base:b ~cur:c in
      Vblu_obs.Artifact.pp_comparison ppf cmp;
      Format.pp_print_flush ppf ();
      if not cmp.Vblu_obs.Artifact.passed then exit 1
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Compare two benchmark artifacts (see the bench harness's \
          $(b,artifact) target / $(b,--json)) and fail on regressions \
          beyond the tolerance.")
    Term.(const run $ base $ cur $ tolerance)

(* Shared knobs for the service-layer commands. *)
let serve_requests_arg =
  Arg.(
    value & opt int 200
    & info [ "requests" ] ~docv:"N" ~doc:"Number of requests to generate.")

let serve_seed_arg =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"N"
        ~doc:"Workload seed; the whole run is a pure function of it.")

let serve_load_arg =
  Arg.(
    value & opt float 1.0
    & info [ "load" ] ~docv:"X"
        ~doc:
          "Offered load as a multiple of the service's drain capacity \
           (2.0 = the overload soak).")

let serve_capacity_arg =
  Arg.(
    value & opt int Vblu_serve.Service.default_config.Vblu_serve.Service.capacity
    & info [ "capacity" ] ~docv:"N" ~doc:"Admission queue bound.")

let serve_max_batch_arg =
  Arg.(
    value
    & opt int Vblu_serve.Service.default_config.Vblu_serve.Service.max_batch
    & info [ "max-batch" ] ~docv:"N"
        ~doc:"Max requests coalesced into one shared launch.")

let serve_deadline_arg =
  Arg.(
    value & opt float 50.0
    & info [ "deadline-windows" ] ~docv:"W"
        ~doc:
          "Per-request deadline, in dispatch windows past submission \
           (0 disables deadlines).")

let serve_config capacity max_batch =
  { Vblu_serve.Service.default_config with
    Vblu_serve.Service.capacity; max_batch }

let serve_ilu0_share_arg =
  Arg.(
    value & opt float 0.0
    & info [ "ilu0-share" ] ~docv:"X"
        ~doc:
          "Fraction of requests asking for the block-ILU(0) family \
           (selected deterministically by request index; the rest are \
           block-Jacobi).")

let serve_cmd =
  let run requests seed domains capacity max_batch ilu0_share faults trace
      metrics =
    setup_logs ();
    let module S = Vblu_serve in
    with_obs trace metrics @@ fun obs ->
    let config = serve_config capacity max_batch in
    let svc = S.Service.create ~pool:(pool_of domains) ?faults ?obs config in
    (* A simple client: submit a seeded stream of block-tridiagonal
       systems across three tenants, step the dispatcher, pick up the
       results — the transcript a real integration would produce. *)
    let st = Random.State.make [| seed |] in
    let tenants = [| "alpha"; "beta"; "gamma" |] in
    let ids =
      Array.init requests (fun i ->
          let blocks = 2 + Random.State.int st 5 in
          let block_size = 4 + Random.State.int st 13 in
          let a =
            Vblu_workloads.Generators.block_tridiagonal ~state:st ~blocks
              ~block_size ()
          in
          let n, _ = Vblu_sparse.Csr.dims a in
          let rhs = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let precond =
            if float_of_int (i mod 100) < (ilu0_share *. 100.0) -. 1e-9 then
              S.Batcher.Ilu0
            else S.Batcher.Jacobi
          in
          let id =
            S.Service.submit svc
              ~tenant:tenants.(i mod Array.length tenants)
              { S.Batcher.a; rhs; max_block_size = 32; precond }
          in
          if i mod 8 = 7 then S.Service.step svc;
          id)
    in
    S.Service.drain svc;
    let completed =
      Array.fold_left
        (fun acc id ->
          match S.Service.status svc id with
          | S.Service.Completed _ -> acc + 1
          | _ -> acc)
        0 ids
    in
    Format.printf "completed %d/%d requests@." completed requests;
    Format.printf "%a@." S.Service.pp_health (S.Service.health svc);
    Format.printf "@[<v>per-tenant:@,%a@]@."
      (fun ppf l ->
        List.iter
          (fun (name, c) ->
            Format.fprintf ppf "  %-8s submitted=%d completed=%d failed=%d@,"
              name c.S.Tenant.submitted c.S.Tenant.completed c.S.Tenant.failed)
          l)
      (S.Service.tenants svc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the coalescing solver service over a generated request \
          stream and print its accounting.")
    Term.(
      const run $ serve_requests_arg $ serve_seed_arg $ domains_arg
      $ serve_capacity_arg $ serve_max_batch_arg $ serve_ilu0_share_arg
      $ faults_arg $ trace_arg $ metrics_arg)

let loadgen_cmd =
  let checksum_arg =
    Arg.(
      value & flag
      & info [ "checksum" ]
          ~doc:
            "Print only the one-line report fingerprint (what the CI soak \
             diffs across $(b,--domains) values).")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:
            "Skip the bit-identity audit against direct per-request \
             block-Jacobi solves.")
  in
  let repeat_share_arg =
    Arg.(
      value & opt float 0.0
      & info [ "repeat-share" ] ~docv:"X"
          ~doc:
            "Fraction of requests replaced by recurring-tenant \
             resubmissions: the same sparsity pattern as an earlier \
             request with slightly drifted values (selected \
             deterministically by index, so non-repeat requests are \
             bit-identical for any share).")
  in
  let setup_cache_arg =
    Arg.(
      value & flag
      & info [ "setup-cache" ]
          ~doc:
            "Keep a cross-wave setup cache so recurring requests reuse \
             their previous factorizations and only refactor drifted \
             blocks.  Results stay bit-identical.")
  in
  let run requests seed load deadline_windows domains capacity max_batch
      ilu0_share repeat_share setup_cache checksum no_verify trace metrics =
    setup_logs ();
    let module S = Vblu_serve in
    with_obs trace metrics @@ fun obs ->
    let spec =
      {
        S.Loadgen.default_spec with
        S.Loadgen.requests;
        seed;
        load;
        deadline_windows;
        ilu0_share;
        repeat_share;
        verify = not no_verify;
      }
    in
    let config =
      { (serve_config capacity max_batch) with
        Vblu_serve.Service.setup_cache }
    in
    let report = S.Loadgen.run ~pool:(pool_of domains) ?obs ~config spec in
    if checksum then print_endline (S.Loadgen.checksum report)
    else Format.printf "%a@." S.Loadgen.pp_report report;
    (* The overload contract, enforced with a nonzero exit so CI can
       gate on it: full accounting, bounded deadline overshoot, and
       bit-identical completed results. *)
    let bad msg =
      Printf.eprintf "loadgen: property violated: %s\n" msg;
      exit 1
    in
    if not report.S.Loadgen.accounted then
      bad "unaccounted requests (completed+rejected+shed+failed <> submitted)";
    if not report.S.Loadgen.within_bound then
      bad "deadline overshoot beyond one batch window";
    if not report.S.Loadgen.verified then
      bad "completed result differs from a direct preconditioner solve"
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive the service with a seeded (optionally overloaded) request \
          stream and fail on any robustness-contract violation.")
    Term.(
      const run $ serve_requests_arg $ serve_seed_arg $ serve_load_arg
      $ serve_deadline_arg $ domains_arg $ serve_capacity_arg
      $ serve_max_batch_arg $ serve_ilu0_share_arg $ repeat_share_arg
      $ setup_cache_arg $ checksum_arg $ no_verify_arg $ trace_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* Time-stepping workload: amortized preconditioner setup              *)

let ts_refresh_conv =
  let parse s =
    match Vblu_workloads.Timestep.refresh_of_string s with
    | Ok r -> Ok r
    | Error msg -> Error (`Msg msg)
  in
  let print ppf r =
    Format.pp_print_string ppf (Vblu_workloads.Timestep.refresh_name r)
  in
  Arg.conv (parse, print)

let ts_family_conv =
  let parse s =
    match Vblu_workloads.Timestep.family_of_string s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  let print ppf f =
    Format.pp_print_string ppf (Vblu_workloads.Timestep.family_name f)
  in
  Arg.conv (parse, print)

let timestep_cmd =
  let module T = Vblu_workloads.Timestep in
  let steps_arg =
    Arg.(
      value & opt int 20
      & info [ "steps" ] ~docv:"N" ~doc:"Number of time steps to solve.")
  in
  let nx_arg =
    Arg.(value & opt int 24 & info [ "nx" ] ~docv:"N" ~doc:"Grid width.")
  in
  let ny_arg =
    Arg.(value & opt int 24 & info [ "ny" ] ~docv:"N" ~doc:"Grid height.")
  in
  let peclet_arg =
    Arg.(
      value & opt float 10.0
      & info [ "peclet" ] ~docv:"PE" ~doc:"Convection strength.")
  in
  let drift_arg =
    Arg.(
      value & opt float 0.05
      & info [ "drift" ] ~docv:"X"
          ~doc:
            "Relative amplitude of the drifting convection band — how \
             much of the matrix changes per step (the sparsity pattern \
             never changes).")
  in
  let refresh_arg =
    Arg.(
      value & opt ts_refresh_conv T.Every_step
      & info [ "refresh" ] ~docv:"POLICY"
          ~doc:
            "Preconditioner refresh policy: $(b,every-step), \
             $(b,every:K) (refresh every K steps), or $(b,on-stall) / \
             $(b,on-stall:G) (refresh when IDR(4) iterations grow by \
             more than G over the last refresh).")
  in
  let tol_arg =
    Arg.(
      value & opt float 0.0
      & info [ "tol" ] ~docv:"T"
          ~doc:
            "Dirty-block tolerance: a block is refactored when its max \
             entry change exceeds T (0 = any bitwise change refactors — \
             results then match a fresh setup bit for bit).")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Disable partial refactorization: every refresh rebuilds \
             every block (the baseline the partial path is gated \
             against).")
  in
  let family_arg =
    Arg.(
      value & opt ts_family_conv T.Jacobi
      & info [ "precond" ] ~docv:"FAMILY"
          ~doc:"Preconditioner family: $(b,jacobi) or $(b,ilu0).")
  in
  let run steps nx ny peclet drift refresh tol full family domains layout
      trace metrics =
    setup_logs ();
    with_obs trace metrics @@ fun obs ->
    let mode = if full then T.Full else T.Partial tol in
    let r =
      T.run ~pool:(pool_of domains) ~nx ~ny ~peclet ~drift ~steps ~family
        ~refresh ~mode ~layout ?obs ()
    in
    Format.printf
      "@[<v>timestep: %s, refresh %s, mode %s, %dx%d grid, %d steps@,@,\
       %-5s %-9s %6s %6s %8s %9s %6s %10s@,"
      (T.family_name family) (T.refresh_name refresh) (T.mode_name mode) nx
      ny steps "step" "refreshed" "dirty" "reused" "launches" "setup-tx"
      "iters" "residual";
    Array.iter
      (fun (s : T.step_stat) ->
        Format.printf "%-5d %-9s %6d %6d %8d %9d %6d %10.3e@," s.T.step
          (if s.T.refreshed then "yes" else "-")
          s.T.dirty s.T.reused s.T.launches s.T.setup_transactions
          s.T.iterations s.T.residual_norm)
      r.T.steps;
    Format.printf
      "@,refreshes      %d (+%d stall guards)@,setup launches %d@,setup \
       transactions %d@,setup modelled %.6fs@,total iterations %d@,final \
       residual %.3e@,solution checksum %.17g@]@."
      r.T.refreshes r.T.guard_refreshes r.T.total_launches
      r.T.total_setup_transactions r.T.total_setup_modelled_seconds
      r.T.total_iterations r.T.final_residual r.T.solution_checksum
  in
  Cmd.v
    (Cmd.info "timestep"
       ~doc:
         "Time-stepping workload: re-solve a drifting convection\\xe2\\x80\\x93\
          diffusion system over N steps, amortizing preconditioner setup \
          with dirty-block tracking and partial batched \
          refactorization.")
    Term.(
      const run $ steps_arg $ nx_arg $ ny_arg $ peclet_arg $ drift_arg
      $ refresh_arg $ tol_arg $ full_arg $ family_arg $ domains_arg
      $ layout_arg $ trace_arg $ metrics_arg)

(* CI gate: partial refactorization must cost strictly fewer setup
   transactions than full refresh at bit-identical solutions, for both
   families; and the whole trajectory must be domain-count invariant. *)
let timestep_check_cmd =
  let module T = Vblu_workloads.Timestep in
  let run () =
    setup_logs ();
    let failures = ref 0 in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          incr failures;
          Printf.printf "FAIL %s\n" msg)
        fmt
    in
    let run_one ~domains ~family ~mode () =
      T.run ~pool:(pool_of domains) ~nx:16 ~ny:16 ~steps:10 ~family
        ~refresh:T.Every_step ~mode ()
    in
    List.iter
      (fun family ->
        let name = T.family_name family in
        let full = run_one ~domains:1 ~family ~mode:T.Full () in
        let partial = run_one ~domains:1 ~family ~mode:(T.Partial 0.0) () in
        if
          Int64.bits_of_float partial.T.solution_checksum
          <> Int64.bits_of_float full.T.solution_checksum
        then
          fail "%s: partial refresh changed the solution trajectory" name
        else
          Printf.printf "ok   %-6s partial == full, bitwise (checksum %.17g)\n"
            name partial.T.solution_checksum;
        if partial.T.total_iterations <> full.T.total_iterations then
          fail "%s: partial refresh changed iteration counts" name;
        if
          partial.T.total_setup_transactions
          >= full.T.total_setup_transactions
        then
          fail "%s: partial setup tx %d not below full %d" name
            partial.T.total_setup_transactions full.T.total_setup_transactions
        else
          Printf.printf "ok   %-6s partial setup tx %d < full %d (%.1f%%)\n"
            name partial.T.total_setup_transactions
            full.T.total_setup_transactions
            (100.0
            *. float_of_int partial.T.total_setup_transactions
            /. float_of_int full.T.total_setup_transactions);
        let p2 = run_one ~domains:2 ~family ~mode:(T.Partial 0.0) () in
        if
          Int64.bits_of_float p2.T.solution_checksum
          <> Int64.bits_of_float partial.T.solution_checksum
          || p2.T.total_setup_transactions
             <> partial.T.total_setup_transactions
        then fail "%s: trajectory differs at domains=2" name
        else Printf.printf "ok   %-6s domain-count invariant\n" name)
      [ T.Jacobi; T.Ilu0 ];
    if !failures > 0 then begin
      Printf.eprintf "timestep-check: %d gate(s) failed\n" !failures;
      exit 1
    end
    else Printf.printf "timestep-check: all gates passed\n"
  in
  Cmd.v
    (Cmd.info "timestep-check"
       ~doc:
         "CI gate for amortized preconditioner setup: partial \
          refactorization must spend strictly fewer setup transactions \
          than full refresh at a bit-identical solution trajectory (both \
          families), invariant across $(b,--domains) values (exit 1 \
          otherwise).")
    Term.(const run $ const ())


let cmds =
  [
    fig_cmd "fig4" "Figure 4: factorization GFLOPS vs batch size."
      (fun ~quick ~pool ?obs ~layout ppf ->
        Kernel_figs.fig4 ~quick ~pool ?obs ~layout ppf);
    fig_cmd "fig5" "Figure 5: factorization GFLOPS vs matrix size."
      (fun ~quick ~pool ?obs ~layout ppf ->
        Kernel_figs.fig5 ~quick ~pool ?obs ~layout ppf);
    fig_cmd "fig6" "Figure 6: triangular-solve GFLOPS vs batch size."
      (fun ~quick ~pool ?obs ~layout ppf ->
        Kernel_figs.fig6 ~quick ~pool ?obs ~layout ppf);
    fig_cmd "fig7" "Figure 7: triangular-solve GFLOPS vs matrix size."
      (fun ~quick ~pool ?obs ~layout ppf ->
        Kernel_figs.fig7 ~quick ~pool ?obs ~layout ppf);
    kernel_cmd "layout-sweep"
      "Blocked vs interleaved storage: transactions and GFLOPS."
      (fun ~quick ~pool ?obs:_ ppf -> Kernel_figs.layout_sweep ~quick ~pool ppf);
    layout_check_cmd;
    kernel_cmd "ablation-pivot" "Implicit vs explicit vs no pivoting."
      (fun ~quick ~pool ?obs:_ ppf -> Kernel_figs.ablation_pivot ~quick ~pool ppf);
    kernel_cmd "ablation-trsv" "Eager vs lazy triangular solves."
      (fun ~quick ~pool ?obs:_ ppf -> Kernel_figs.ablation_trsv ~quick ~pool ppf);
    kernel_cmd "ablation-extract" "Extraction strategies."
      (fun ~quick ~pool ?obs:_ ppf ->
        Kernel_figs.ablation_extraction ~quick ~pool ppf);
    kernel_cmd "ablation-cholesky" "Cholesky (future work) vs LU on SPD."
      (fun ~quick ~pool ?obs:_ ppf ->
        Kernel_figs.ablation_cholesky ~quick ~pool ppf);
    kernel_cmd "ablation-varsize"
      "Variable-size batches from real supervariable blockings."
      (fun ~quick ~pool ?obs:_ ppf ->
        Kernel_figs.ablation_variable_size ~quick ~pool ppf);
    kernel_cmd "abft-overhead"
      "ABFT checksum overhead: protected vs unprotected LU/TRSV."
      (fun ~quick ~pool ?obs:_ ppf -> Kernel_figs.abft_overhead ~quick ~pool ppf);
    solver_cmd "fig8" "Figure 8: LU vs GH convergence histogram."
      Solver_figs.fig8;
    solver_cmd "fig9" "Figure 9: total solver time per matrix."
      Solver_figs.fig9;
    solver_cmd "table1" "Table I: iterations and runtimes." Solver_figs.table1;
    solver_cmd "ablation-variants"
      "Factorization vs inversion based block-Jacobi."
      Solver_figs.ablation_variants;
    suite_cmd;
    solve_cmd;
    levels_cmd;
    precond_cmd;
    precond_check_cmd;
    serve_cmd;
    loadgen_cmd;
    timestep_cmd;
    timestep_check_cmd;
    csv_cmd;
    all_cmd;
    bench_compare_cmd;
  ]

let () =
  let info =
    Cmd.info "vblu" ~version:"1.0.0"
      ~doc:
        "Variable-size batched LU for small matrices and block-Jacobi \
         preconditioning — reproduction toolkit."
  in
  exit (Cmd.eval (Cmd.group info cmds))
