(* Tests for the Krylov solvers: convergence on known systems, correctness
   against direct solutions, preconditioning behaviour, and the stopping /
   breakdown machinery. *)

open Vblu_smallblas
open Vblu_sparse
open Vblu_precond
open Vblu_krylov

let laplacian nx ny = Vblu_workloads.Generators.laplacian_2d ~nx ~ny ()

let direct_solution a b =
  (* Dense LU on the small test systems. *)
  let m = Csr.to_dense a in
  Lu.solve (Lu.factor_explicit m) b

let check_solution name a b x tol =
  let x_ref = direct_solution a b in
  Alcotest.(check bool)
    (name ^ " matches direct solve")
    true
    (Vector.max_abs_diff x x_ref /. (1.0 +. Vector.norm_inf x_ref) < tol)

let spd_system seed =
  let a = laplacian 12 12 in
  let n, _ = Csr.dims a in
  (a, Vector.random ~state:(Random.State.make [| seed |]) n)

let nonsym_system seed =
  let a =
    Vblu_workloads.Generators.convection_diffusion_2d ~nx:12 ~ny:12 ~peclet:20.0 ()
  in
  let n, _ = Csr.dims a in
  (a, Vector.random ~state:(Random.State.make [| seed |]) n)

let tight = { Solver.default_config with Solver.rtol = 1e-10 }

(* ------------------------------------------------------------------ *)

let test_cg_spd () =
  let a, b = spd_system 1 in
  let x, stats = Cg.solve ~config:tight a b in
  Alcotest.(check bool) "converged" true (Solver.converged stats);
  check_solution "cg" a b x 1e-7

let test_cg_preconditioned_fewer_iterations () =
  (* SPD anisotropic problem; 32-wide blocks are exactly the strongly
     coupled grid lines, so block-Jacobi acts as a line smoother. *)
  let a = Vblu_workloads.Generators.anisotropic_2d ~nx:32 ~ny:8 ~epsilon:0.05 () in
  let n, _ = Csr.dims a in
  let b = Array.make n 1.0 in
  let _, plain = Cg.solve a b in
  let precond, _ =
    Block_jacobi.create ~blocking:(Supervariable.uniform ~n ~block_size:32) a
  in
  let _, pre = Cg.solve ~precond a b in
  Alcotest.(check bool) "both converge" true
    (Solver.converged plain && Solver.converged pre);
  Alcotest.(check bool)
    (Printf.sprintf "preconditioning helps (%d vs %d)" pre.Solver.iterations
       plain.Solver.iterations)
    true
    (pre.Solver.iterations <= plain.Solver.iterations)

let test_bicgstab_nonsymmetric () =
  let a, b = nonsym_system 2 in
  let x, stats = Bicgstab.solve ~config:tight a b in
  Alcotest.(check bool) "converged" true (Solver.converged stats);
  check_solution "bicgstab" a b x 1e-6

let test_gmres_nonsymmetric () =
  let a, b = nonsym_system 3 in
  let x, stats = Gmres.solve ~restart:20 ~config:tight a b in
  Alcotest.(check bool) "converged" true (Solver.converged stats);
  check_solution "gmres" a b x 1e-6

let test_idr_nonsymmetric () =
  let a, b = nonsym_system 4 in
  let x, stats = Idr.solve ~config:tight a b in
  Alcotest.(check bool) "converged" true (Solver.converged stats);
  check_solution "idr" a b x 1e-6

let test_idr_s_values () =
  let a, b = nonsym_system 5 in
  List.iter
    (fun s ->
      let x, stats = Idr.solve ~s a b in
      Alcotest.(check bool)
        (Printf.sprintf "IDR(%d) converges" s)
        true (Solver.converged stats);
      check_solution (Printf.sprintf "idr(%d)" s) a b x 1e-3)
    [ 1; 2; 4; 8 ]

let test_idr_preconditioned () =
  let a = Vblu_workloads.Generators.fem_blocks ~nodes:80 ~vars_per_node:4 () in
  let n, _ = Csr.dims a in
  let b = Array.make n 1.0 in
  let precond, _ = Block_jacobi.create ~max_block_size:16 a in
  let _, plain = Idr.solve ~s:4 a b in
  let _, pre = Idr.solve ~precond ~s:4 a b in
  Alcotest.(check bool) "converged" true (Solver.converged pre);
  Alcotest.(check bool) "preconditioning does not hurt" true
    (pre.Solver.iterations <= plain.Solver.iterations)

let test_idr_deterministic_seed () =
  let a, b = nonsym_system 6 in
  let _, s1 = Idr.solve ~seed:3 a b in
  let _, s2 = Idr.solve ~seed:3 a b in
  let _, s3 = Idr.solve ~seed:4 a b in
  Alcotest.(check int) "same seed, same iterations" s1.Solver.iterations
    s2.Solver.iterations;
  (* A different shadow space is allowed to converge differently; just
     check it still converges. *)
  Alcotest.(check bool) "other seed converges" true (Solver.converged s3)

let test_idr_smoothing () =
  let a, b = nonsym_system 13 in
  let config = { Solver.default_config with Solver.record_history = true } in
  let x, stats = Idr.solve ~smoothing:true ~config a b in
  Alcotest.(check bool) "converged" true (Solver.converged stats);
  check_solution "idr smoothed" a b x 1e-4;
  (* The smoothed residual history never increases. *)
  let h = stats.Solver.history in
  let monotone = ref true in
  for i = 1 to Array.length h - 1 do
    if h.(i) > h.(i - 1) *. (1.0 +. 1e-12) then monotone := false
  done;
  Alcotest.(check bool) "monotone history" true !monotone

let test_max_iterations () =
  let a, b = spd_system 7 in
  let config = { Solver.default_config with Solver.max_iters = 3 } in
  let _, stats = Cg.solve ~config a b in
  Alcotest.(check bool) "hits cap" true
    (stats.Solver.outcome = Solver.Max_iterations);
  Alcotest.(check int) "counted" 3 stats.Solver.iterations

let test_history_recorded () =
  let a, b = spd_system 8 in
  let config = { Solver.default_config with Solver.record_history = true } in
  let _, stats = Cg.solve ~config a b in
  Alcotest.(check bool) "history non-empty" true
    (Array.length stats.Solver.history > 2);
  (* CG on SPD: the recurrence residual should shrink overall. *)
  let h = stats.Solver.history in
  Alcotest.(check bool) "decreases" true
    (h.(Array.length h - 1) < h.(0) /. 1e4)

let test_zero_rhs () =
  let a, _ = spd_system 9 in
  let n, _ = Csr.dims a in
  let b = Array.make n 0.0 in
  List.iter
    (fun (name, solve) ->
      let x, stats = solve a b in
      Alcotest.(check bool) (name ^ " converges immediately") true
        (Solver.converged stats && stats.Solver.iterations = 0);
      Alcotest.(check bool) (name ^ " returns zero") true
        (Vector.norm_inf x = 0.0))
    [
      ("cg", fun a b -> Cg.solve a b);
      ("bicgstab", fun a b -> Bicgstab.solve a b);
      ("idr", fun a b -> Idr.solve a b);
      ("gmres", fun a b -> Gmres.solve a b);
    ]

let test_dimension_mismatch () =
  let a, _ = spd_system 10 in
  Alcotest.check_raises "bad rhs"
    (Invalid_argument "Krylov: rhs dimension mismatch") (fun () ->
      ignore (Cg.solve a [| 1.0 |]))

let test_final_residual_is_true_residual () =
  let a, b = nonsym_system 11 in
  let x, stats = Idr.solve a b in
  let r = Vector.sub b (Csr.spmv a x) in
  Alcotest.(check (float 1e-12)) "stats match recomputation"
    (Vector.nrm2 r) stats.Solver.residual_norm

let test_gmres_restart_cycles () =
  (* A tiny restart forces several cycles; convergence must survive. *)
  let a, b = nonsym_system 14 in
  let x, stats = Gmres.solve ~restart:3 ~config:tight a b in
  Alcotest.(check bool) "converged across restarts" true
    (Solver.converged stats);
  check_solution "gmres(3)" a b x 1e-6

let test_breakdown_reported () =
  (* A singular operator: solvers must terminate with a diagnosis, not
     loop or crash. *)
  let z =
    Csr.create ~n_rows:2 ~n_cols:2 ~row_ptr:[| 0; 1; 2 |] ~col_idx:[| 0; 1 |]
      ~values:[| 1.0; 0.0 |]
  in
  let b = [| 1.0; 1.0 |] in
  let config = { Solver.default_config with Solver.max_iters = 50 } in
  List.iter
    (fun (name, solve) ->
      let _, stats = solve z b config in
      Alcotest.(check bool)
        (name ^ " terminates without convergence")
        true
        (match stats.Solver.outcome with
        | Solver.Converged -> false
        | Solver.Breakdown _ | Solver.Max_iterations -> true))
    [
      ("cg", fun a b config -> Cg.solve ~config a b);
      ("bicgstab", fun a b config -> Bicgstab.solve ~config a b);
      ("idr", fun a b config -> Idr.solve ~config a b);
      ("gmres", fun a b config -> Gmres.solve ~config a b);
    ]

let test_solvers_agree () =
  let a, b = nonsym_system 12 in
  let x1, _ = Bicgstab.solve ~config:tight a b in
  let x2, _ = Gmres.solve ~config:tight a b in
  let x3, _ = Idr.solve ~config:tight a b in
  let scale = 1.0 +. Vector.norm_inf x1 in
  Alcotest.(check bool) "bicgstab = gmres" true
    (Vector.max_abs_diff x1 x2 /. scale < 1e-6);
  Alcotest.(check bool) "idr = gmres" true
    (Vector.max_abs_diff x3 x2 /. scale < 1e-6)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  [
    QCheck.Test.make ~count:15 ~name:"idr(4) solves dominant fem systems"
      QCheck.(int_bound 1000)
      (fun seed ->
        let a =
          Vblu_workloads.Generators.fem_blocks
            ~state:(Random.State.make [| seed |])
            ~nodes:25 ~vars_per_node:3 ~margin:0.2 ()
        in
        let n, _ = Csr.dims a in
        let x_true = Vector.random ~state:(Random.State.make [| seed + 1 |]) n in
        let b = Csr.spmv a x_true in
        let precond, _ = Block_jacobi.create ~max_block_size:8 a in
        let x, stats = Idr.solve ~precond a b in
        Solver.converged stats
        && Vector.max_abs_diff x x_true /. (1.0 +. Vector.norm_inf x_true) < 1e-3);
    QCheck.Test.make ~count:15 ~name:"cg iterations bounded by dimension"
      QCheck.(int_range 3 8)
      (fun k ->
        let a = laplacian k k in
        let n, _ = Csr.dims a in
        let b = Array.make n 1.0 in
        let _, stats = Cg.solve ~config:tight a b in
        Solver.converged stats && stats.Solver.iterations <= n + 2);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "krylov"
    [
      ( "convergence",
        [
          Alcotest.test_case "cg on spd" `Quick test_cg_spd;
          Alcotest.test_case "cg preconditioned" `Quick
            test_cg_preconditioned_fewer_iterations;
          Alcotest.test_case "bicgstab" `Quick test_bicgstab_nonsymmetric;
          Alcotest.test_case "gmres" `Quick test_gmres_nonsymmetric;
          Alcotest.test_case "idr" `Quick test_idr_nonsymmetric;
          Alcotest.test_case "idr(s) sweep" `Quick test_idr_s_values;
          Alcotest.test_case "idr preconditioned" `Quick test_idr_preconditioned;
          Alcotest.test_case "idr smoothing" `Quick test_idr_smoothing;
          Alcotest.test_case "solvers agree" `Quick test_solvers_agree;
          Alcotest.test_case "gmres restarts" `Quick test_gmres_restart_cycles;
          Alcotest.test_case "breakdown reported" `Quick test_breakdown_reported;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "idr deterministic" `Quick
            test_idr_deterministic_seed;
          Alcotest.test_case "max iterations" `Quick test_max_iterations;
          Alcotest.test_case "history" `Quick test_history_recorded;
          Alcotest.test_case "zero rhs" `Quick test_zero_rhs;
          Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
          Alcotest.test_case "true residual" `Quick
            test_final_residual_is_true_residual;
        ] );
      ("properties", qcheck_tests);
    ]
