test/test_smallblas.ml: Alcotest Array Cholesky Diagnostics Error Float Flops Gauss_huard Gauss_jordan List Lu Matrix Precision Printf QCheck QCheck_alcotest Random Trsv Vblu_smallblas Vector
