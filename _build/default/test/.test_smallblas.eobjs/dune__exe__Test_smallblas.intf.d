test/test_smallblas.mli:
