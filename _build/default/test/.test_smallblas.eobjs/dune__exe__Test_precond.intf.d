test/test_precond.mli:
