test/test_sparse.ml: Alcotest Array Coo Csr Filename List Matrix Mm_io Printf QCheck QCheck_alcotest Random Reorder Sys Vblu_smallblas Vblu_sparse Vblu_workloads Vector
