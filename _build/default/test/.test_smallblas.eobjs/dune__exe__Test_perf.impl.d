test/test_perf.ml: Alcotest Buffer Format Kernel_figs List Printf Report Solver_figs Solver_study String Vblu_perf Vblu_precond Vblu_workloads
