test/test_krylov.mli:
