test/test_simt.ml: Alcotest Array Config Counter Gmem Launch List Precision Printf Sampling Vblu_simt Vblu_smallblas Warp
