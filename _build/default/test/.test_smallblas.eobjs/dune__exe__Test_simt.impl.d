test/test_simt.ml: Alcotest Array Config Counter Float Gmem Launch List Precision Printf QCheck QCheck_alcotest Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
