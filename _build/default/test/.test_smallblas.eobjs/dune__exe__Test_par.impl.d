test/test_par.ml: Alcotest Array Float List Pool QCheck QCheck_alcotest Vblu_par
