test/test_par.ml: Alcotest Array List Pool QCheck QCheck_alcotest Vblu_par
