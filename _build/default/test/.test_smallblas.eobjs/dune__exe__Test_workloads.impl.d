test/test_workloads.ml: Alcotest Array Csr Float Generators List QCheck QCheck_alcotest Random Suite Vblu_sparse Vblu_workloads
