(* Tests for the domain pool. *)

open Vblu_par

let test_sequential_for () =
  let hits = Array.make 10 0 in
  Pool.parallel_for Pool.sequential ~lo:0 ~hi:10 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index once" (Array.make 10 1) hits

let test_parallel_for_covers_range () =
  let pool = Pool.create ~num_domains:4 () in
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index once" (Array.make n 1) hits

let test_empty_and_single () =
  let pool = Pool.create ~num_domains:4 () in
  Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "must not run");
  let count = ref 0 in
  Pool.parallel_for pool ~lo:7 ~hi:8 (fun i ->
      incr count;
      Alcotest.(check int) "index" 7 i);
  Alcotest.(check int) "single" 1 !count

let test_parallel_map () =
  let pool = Pool.create ~num_domains:3 () in
  let xs = Array.init 100 (fun i -> i) in
  let ys = Pool.parallel_map pool (fun x -> x * x) xs in
  Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) xs) ys

let test_parallel_init () =
  let pool = Pool.create ~num_domains:2 () in
  let ys = Pool.parallel_init pool 50 (fun i -> 2 * i) in
  Alcotest.(check (array int)) "init" (Array.init 50 (fun i -> 2 * i)) ys;
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_init pool 0 (fun i -> i))

let test_exception_propagates () =
  let pool = Pool.create ~num_domains:4 () in
  Alcotest.check_raises "re-raised" Exit (fun () ->
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> if i = 42 then raise Exit))

let test_num_domains () =
  Alcotest.(check int) "sequential" 1 (Pool.num_domains Pool.sequential);
  Alcotest.(check int) "clamped" 1 (Pool.num_domains (Pool.create ~num_domains:0 ()));
  Alcotest.(check bool) "probe positive" true
    (Pool.num_domains (Pool.create ()) >= 1)

let qcheck_tests =
  [
    QCheck.Test.make ~count:30 ~name:"parallel_map = Array.map"
      QCheck.(pair (int_range 1 6) (small_list int))
      (fun (domains, xs) ->
        let pool = Pool.create ~num_domains:domains () in
        let a = Array.of_list xs in
        Pool.parallel_map pool (fun x -> x + 1) a = Array.map (fun x -> x + 1) a);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "sequential for" `Quick test_sequential_for;
          Alcotest.test_case "covers range" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "empty/single" `Quick test_empty_and_single;
          Alcotest.test_case "map" `Quick test_parallel_map;
          Alcotest.test_case "init" `Quick test_parallel_init;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "num_domains" `Quick test_num_domains;
        ] );
      ("properties", qcheck_tests);
    ]
