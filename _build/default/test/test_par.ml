(* Tests for the domain pool. *)

open Vblu_par

let test_sequential_for () =
  let hits = Array.make 10 0 in
  Pool.parallel_for Pool.sequential ~lo:0 ~hi:10 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index once" (Array.make 10 1) hits

let test_parallel_for_covers_range () =
  let pool = Pool.create ~num_domains:4 () in
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index once" (Array.make n 1) hits

let test_empty_and_single () =
  let pool = Pool.create ~num_domains:4 () in
  Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "must not run");
  let count = ref 0 in
  Pool.parallel_for pool ~lo:7 ~hi:8 (fun i ->
      incr count;
      Alcotest.(check int) "index" 7 i);
  Alcotest.(check int) "single" 1 !count

let test_parallel_map () =
  let pool = Pool.create ~num_domains:3 () in
  let xs = Array.init 100 (fun i -> i) in
  let ys = Pool.parallel_map pool (fun x -> x * x) xs in
  Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) xs) ys

let test_parallel_init () =
  let pool = Pool.create ~num_domains:2 () in
  let ys = Pool.parallel_init pool 50 (fun i -> 2 * i) in
  Alcotest.(check (array int)) "init" (Array.init 50 (fun i -> 2 * i)) ys;
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_init pool 0 (fun i -> i))

let test_exception_propagates () =
  let pool = Pool.create ~num_domains:4 () in
  Alcotest.check_raises "re-raised" Exit (fun () ->
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> if i = 42 then raise Exit))

let test_num_domains () =
  Alcotest.(check int) "sequential" 1 (Pool.num_domains Pool.sequential);
  Alcotest.(check int) "clamped" 1 (Pool.num_domains (Pool.create ~num_domains:0 ()));
  Alcotest.(check bool) "probe positive" true
    (Pool.num_domains (Pool.create ()) >= 1)

(* The pool-bugfix regression: n=5 over 4 domains used to produce chunks
   2,2,1,0 — a spawned domain with no work.  Now every chunk is non-empty
   and the remainder is spread one element at a time. *)
let test_chunk_bounds_balanced () =
  let pool = Pool.create ~num_domains:4 () in
  Alcotest.(check (array (pair int int)))
    "n=5 over 4 domains: 2,1,1,1"
    [| (0, 2); (2, 3); (3, 4); (4, 5) |]
    (Pool.chunk_bounds pool ~lo:0 ~hi:5);
  Alcotest.(check (array (pair int int)))
    "n=2 over 4 domains: only 2 chunks"
    [| (10, 11); (11, 12) |]
    (Pool.chunk_bounds pool ~lo:10 ~hi:12);
  Alcotest.(check (array (pair int int))) "empty range" [||]
    (Pool.chunk_bounds pool ~lo:3 ~hi:3)

let chunk_bounds_invariants ~domains ~lo ~hi =
  let pool = Pool.create ~num_domains:domains () in
  let bounds = Pool.chunk_bounds pool ~lo ~hi in
  let n = max 0 (hi - lo) in
  (if n = 0 then bounds = [||]
   else
     Array.length bounds = min domains n
     && fst bounds.(0) = lo
     && snd bounds.(Array.length bounds - 1) = hi)
  && Array.for_all (fun (clo, chi) -> chi > clo) bounds
  && Array.for_all
       (fun i -> snd bounds.(i - 1) = fst bounds.(i))
       (Array.init (max 0 (Array.length bounds - 1)) (fun i -> i + 1))
  &&
  let sizes = Array.map (fun (clo, chi) -> chi - clo) bounds in
  Array.length sizes = 0
  ||
  let mn = Array.fold_left min max_int sizes
  and mx = Array.fold_left max 0 sizes in
  mx - mn <= 1

let domains_gen = QCheck.Gen.oneofl [ 1; 2; 4; 7 ]

let qcheck_tests =
  [
    QCheck.Test.make ~count:30 ~name:"parallel_map = Array.map"
      QCheck.(pair (int_range 1 6) (small_list int))
      (fun (domains, xs) ->
        let pool = Pool.create ~num_domains:domains () in
        let a = Array.of_list xs in
        Pool.parallel_map pool (fun x -> x + 1) a = Array.map (fun x -> x + 1) a);
    QCheck.Test.make ~count:100
      ~name:"chunk_bounds: ordered partition, no empty chunks, sizes within 1"
      QCheck.(pair (int_range 1 9) (pair (int_range (-3) 40) (int_range 0 40)))
      (fun (domains, (lo, len)) ->
        chunk_bounds_invariants ~domains ~lo ~hi:(lo + len));
    (* Satellite: parallel_for over any domain count behaves exactly like
       Pool.sequential — same per-index visit counts, same merged sum. *)
    QCheck.Test.make ~count:50
      ~name:"parallel_for ~domains:{1,2,4,7} = sequential (visits and sum)"
      QCheck.(pair (QCheck.make domains_gen) (int_range 0 60))
      (fun (domains, n) ->
        let run pool =
          let hits = Array.make (max n 1) 0 in
          let sums = Array.make (max n 1) 0.0 in
          Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
              hits.(i) <- hits.(i) + 1;
              sums.(i) <- sqrt (float_of_int (i + 1)));
          (hits, Array.fold_left ( +. ) 0.0 sums)
        in
        let h_seq, s_seq = run Pool.sequential in
        let h_par, s_par = run (Pool.create ~num_domains:domains ()) in
        h_seq = h_par && Float.equal s_seq s_par);
    QCheck.Test.make ~count:50
      ~name:"parallel_map ~domains:{1,2,4,7} = sequential map"
      QCheck.(pair (QCheck.make domains_gen) (small_list (int_range (-1000) 1000)))
      (fun (domains, xs) ->
        let a = Array.of_list xs in
        let f x = float_of_int x *. 1.5 in
        let seq = Pool.parallel_map Pool.sequential f a in
        let par = Pool.parallel_map (Pool.create ~num_domains:domains ()) f a in
        Array.length seq = Array.length par
        && Array.for_all2 Float.equal seq par);
    QCheck.Test.make ~count:30
      ~name:"exception propagation independent of domain count"
      QCheck.(pair (QCheck.make domains_gen) (int_range 1 50))
      (fun (domains, n) ->
        let pool = Pool.create ~num_domains:domains () in
        let bad = n / 2 in
        match
          Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
              if i = bad then failwith "boom")
        with
        | () -> false
        | exception Failure msg -> msg = "boom");
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "sequential for" `Quick test_sequential_for;
          Alcotest.test_case "covers range" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "empty/single" `Quick test_empty_and_single;
          Alcotest.test_case "map" `Quick test_parallel_map;
          Alcotest.test_case "init" `Quick test_parallel_init;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "num_domains" `Quick test_num_domains;
          Alcotest.test_case "chunk bounds balanced" `Quick
            test_chunk_bounds_balanced;
        ] );
      ("properties", qcheck_tests);
    ]
