(* Tests for the matrix generators and the 48-entry suite. *)

open Vblu_sparse
open Vblu_workloads

let dominance_margin (a : Csr.t) =
  (* min over rows of |a_ii| / sum_{j≠i} |a_ij| *)
  let n, _ = Csr.dims a in
  let worst = ref infinity in
  for i = 0 to n - 1 do
    let diag = ref 0.0 and off = ref 0.0 in
    for k = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
      if a.Csr.col_idx.(k) = i then diag := Float.abs a.Csr.values.(k)
      else off := !off +. Float.abs a.Csr.values.(k)
    done;
    if !off > 0.0 then worst := Float.min !worst (!diag /. !off)
  done;
  !worst

let test_laplacian_2d () =
  let a = Generators.laplacian_2d ~nx:5 ~ny:4 () in
  Alcotest.(check (pair int int)) "dims" (20, 20) (Csr.dims a);
  Alcotest.(check bool) "symmetric" true (Csr.is_symmetric_pattern a);
  Alcotest.(check (float 0.0)) "interior stencil" 4.0 (Csr.get a 6 6);
  Alcotest.(check (float 0.0)) "west neighbour" (-1.0) (Csr.get a 6 5);
  Alcotest.(check int) "5-point nnz" ((20 * 5) - (2 * 5) - (2 * 4)) (Csr.nnz a)

let test_laplacian_3d () =
  let a = Generators.laplacian_3d ~nx:3 ~ny:3 ~nz:3 () in
  Alcotest.(check (pair int int)) "dims" (27, 27) (Csr.dims a);
  Alcotest.(check (float 0.0)) "centre" 6.0 (Csr.get a 13 13);
  Alcotest.(check int) "centre row has 7 entries" 7
    (a.Csr.row_ptr.(14) - a.Csr.row_ptr.(13))

let test_convection_nonsymmetric_values () =
  let a = Generators.convection_diffusion_2d ~nx:6 ~ny:6 ~peclet:25.0 () in
  Alcotest.(check bool) "pattern symmetric" true (Csr.is_symmetric_pattern a);
  (* Values are not symmetric: upwinding. *)
  Alcotest.(check bool) "values nonsymmetric" true
    (Csr.get a 7 6 <> Csr.get a 6 7);
  Alcotest.(check bool) "still dominant" true (dominance_margin a >= 0.999)

let test_anisotropic () =
  let a = Generators.anisotropic_2d ~nx:5 ~ny:5 ~epsilon:0.01 () in
  Alcotest.(check bool) "weak y coupling" true
    (Float.abs (Csr.get a 12 7) < Float.abs (Csr.get a 12 11))

let test_fem_blocks_structure () =
  let a = Generators.fem_blocks ~nodes:30 ~vars_per_node:4 () in
  Alcotest.(check (pair int int)) "dims" (120, 120) (Csr.dims a);
  Alcotest.(check bool) "nonsingular margin" true (dominance_margin a > 1.0);
  (* Node blocks are dense: every intra-node entry present. *)
  for v = 0 to 4 do
    for i = 0 to 3 do
      for j = 0 to 3 do
        Alcotest.(check bool) "dense node block" true
          (Csr.get a ((v * 4) + i) ((v * 4) + j) <> 0.0)
      done
    done
  done

let test_block_tridiagonal () =
  let a = Generators.block_tridiagonal ~blocks:5 ~block_size:3 () in
  Alcotest.(check (pair int int)) "dims" (15, 15) (Csr.dims a);
  Alcotest.(check bool) "coupling present" true (Csr.get a 3 0 <> 0.0);
  Alcotest.(check (float 0.0)) "no long-range" 0.0 (Csr.get a 0 8);
  Alcotest.(check bool) "dominant" true (dominance_margin a > 1.0)

let test_circuit_imbalance () =
  let a = Generators.circuit_like ~n:500 ~hubs:4 ~hub_degree:150 () in
  Alcotest.(check bool) "strong imbalance" true (Csr.row_imbalance a > 5.0);
  Alcotest.(check bool) "dominant (nonsingular)" true (dominance_margin a > 1.0);
  Alcotest.(check bool) "symmetric pattern" true (Csr.is_symmetric_pattern a)

let test_generators_deterministic () =
  let st () = Random.State.make [| 77 |] in
  let a = Generators.fem_blocks ~state:(st ()) ~nodes:10 ~vars_per_node:3 () in
  let b = Generators.fem_blocks ~state:(st ()) ~nodes:10 ~vars_per_node:3 () in
  Alcotest.(check bool) "same seed, same matrix" true (Csr.equal a b)

let test_suite_inventory () =
  Alcotest.(check int) "48 entries" 48 (List.length Suite.all);
  let ids = List.map (fun e -> e.Suite.id) Suite.all in
  Alcotest.(check (list int)) "ids 1..48" (List.init 48 (fun i -> i + 1)) ids;
  let names = List.map (fun e -> e.Suite.name) Suite.all in
  Alcotest.(check int) "names unique" 48
    (List.length (List.sort_uniq compare names))

let test_suite_matrices_wellformed () =
  (* Generate every suite matrix once; CSR validation runs in [create]. *)
  List.iter
    (fun e ->
      let a = Suite.matrix e in
      let n, m = Csr.dims a in
      Alcotest.(check bool) (e.Suite.name ^ " square") true (n = m);
      Alcotest.(check bool) (e.Suite.name ^ " nontrivial") true (n >= 500);
      Alcotest.(check bool)
        (e.Suite.name ^ " has full diagonal")
        true
        (Array.for_all (fun d -> d <> 0.0) (Csr.diagonal a)))
    Suite.all

let test_suite_deterministic () =
  let e = List.hd Suite.all in
  Alcotest.(check bool) "regeneration identical" true
    (Csr.equal (Suite.matrix e) (Suite.matrix e))

let test_suite_find () =
  Alcotest.(check bool) "find known" true (Suite.find "cage10" <> None);
  Alcotest.(check bool) "find unknown" true (Suite.find "nope" = None)

let qcheck_tests =
  [
    QCheck.Test.make ~count:20 ~name:"fem generator rows are dominant"
      QCheck.(pair (int_bound 1000) (int_range 2 6))
      (fun (seed, vars) ->
        let a =
          Generators.fem_blocks
            ~state:(Random.State.make [| seed |])
            ~nodes:15 ~vars_per_node:vars ()
        in
        dominance_margin a > 1.0);
    QCheck.Test.make ~count:20 ~name:"laplacian row sums are nonnegative"
      QCheck.(pair (int_range 2 10) (int_range 2 10))
      (fun (nx, ny) ->
        let a = Generators.laplacian_2d ~nx ~ny () in
        let n, _ = Csr.dims a in
        let ones = Array.make n 1.0 in
        Array.for_all (fun v -> v >= -1e-12) (Csr.spmv a ones));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "workloads"
    [
      ( "generators",
        [
          Alcotest.test_case "laplacian 2d" `Quick test_laplacian_2d;
          Alcotest.test_case "laplacian 3d" `Quick test_laplacian_3d;
          Alcotest.test_case "convection" `Quick test_convection_nonsymmetric_values;
          Alcotest.test_case "anisotropic" `Quick test_anisotropic;
          Alcotest.test_case "fem blocks" `Quick test_fem_blocks_structure;
          Alcotest.test_case "block tridiagonal" `Quick test_block_tridiagonal;
          Alcotest.test_case "circuit imbalance" `Quick test_circuit_imbalance;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
        ] );
      ( "suite",
        [
          Alcotest.test_case "inventory" `Quick test_suite_inventory;
          Alcotest.test_case "matrices well-formed" `Slow
            test_suite_matrices_wellformed;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "find" `Quick test_suite_find;
        ] );
      ("properties", qcheck_tests);
    ]
