(* Quickstart: factorize a variable-size batch of small matrices with the
   register-kernel batched LU, solve one right-hand side per block, and
   check the residuals — the smallest end-to-end tour of the public API.

   Run with:  dune exec examples/quickstart.exe *)

open Vblu_smallblas
open Vblu_core

let () =
  (* A batch of 1,000 independent problems, sizes 4..32 — the range the
     paper targets for block-Jacobi diagonal blocks. *)
  let st = Random.State.make [| 2024 |] in
  let sizes = Batch.random_sizes ~state:st ~count:1_000 ~min_size:4 ~max_size:32 () in
  let batch = Batch.random_general ~state:st sizes in
  let rhs = Batch.vec_random ~state:st sizes in

  (* Factorize every block: one simulated warp per block, implicit partial
     pivoting, factors written back in pivot order. *)
  let f = Batched_lu.factor batch in
  Format.printf "factorization: %a@." Vblu_simt.Launch.pp_stats f.Batched_lu.stats;

  (* Solve the block systems: permutation fused into the load, then the
     eager (AXPY-form) unit-lower and upper triangular sweeps. *)
  let s =
    Batched_trsv.solve ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
      rhs
  in
  Format.printf "triangular solves: %a@." Vblu_simt.Launch.pp_stats
    s.Batched_trsv.stats;

  (* Verify: residual of every block system. *)
  let worst = ref 0.0 in
  for i = 0 to Batch.count batch - 1 do
    let a = Batch.get_matrix batch i in
    let x = Batch.vec_get s.Batched_trsv.solutions i in
    let b = Batch.vec_get rhs i in
    worst := Float.max !worst (Diagnostics.solve_residual a x b)
  done;
  Format.printf "worst relative residual over %d blocks: %.2e@."
    (Batch.count batch) !worst;

  (* The same numerics are available block-by-block on the CPU path. *)
  let a0 = Batch.get_matrix batch 0 in
  let f0 = Lu.factor_implicit a0 in
  let x0 = Lu.solve f0 (Batch.vec_get rhs 0) in
  Format.printf "block 0 solved on the CPU path too: residual %.2e@."
    (Diagnostics.solve_residual a0 x0 (Batch.vec_get rhs 0))
