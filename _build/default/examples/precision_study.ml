(* Single vs double precision for the batched kernels: performance (the
   kernels' modelled GFLOPS at both precisions, as in Figures 4-7) and
   numerics (factorization backward error and element growth with and
   without pivoting, which is why the paper insists on partial pivoting).

   Run with:  dune exec examples/precision_study.exe *)

open Vblu_smallblas
open Vblu_core
module S = Vblu_simt.Sampling
module L = Vblu_simt.Launch

let () =
  (* Performance: one fixed-size batch per precision. *)
  let count = 40_000 and size = 32 in
  let sizes = Batch.uniform_sizes ~count ~size in
  let batch = Batch.create sizes in
  Batch.set_matrix batch 0 (Matrix.random_diagdom size);
  List.iter
    (fun prec ->
      let f = Batched_lu.factor ~prec ~mode:S.Sampled batch in
      let rhs = Batch.vec_random sizes in
      let s =
        Batched_trsv.solve ~prec ~mode:S.Sampled ~factors:f.Batched_lu.factors
          ~pivots:f.Batched_lu.pivots rhs
      in
      Format.printf "%s: GETRF %6.1f GFLOPS | TRSV %5.1f GFLOPS@."
        (Precision.to_string prec) f.Batched_lu.stats.L.gflops
        s.Batched_trsv.stats.L.gflops)
    [ Precision.Single; Precision.Double ];

  (* Numerics: backward error of the factorization in both precisions,
     with implicit pivoting vs no pivoting. *)
  let st = Random.State.make [| 77 |] in
  let trials = 200 in
  let worst = Hashtbl.create 8 in
  let note key v =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt worst key) in
    Hashtbl.replace worst key (Float.max cur v)
  in
  for _ = 1 to trials do
    let n = 4 + Random.State.int st 29 in
    let a = Matrix.random_general ~state:st n in
    List.iter
      (fun prec ->
        let f = Lu.factor_implicit ~prec a in
        note (Precision.to_string prec, "pivoting: residual")
          (Diagnostics.factor_residual a f);
        note (Precision.to_string prec, "pivoting: growth")
          (Diagnostics.growth_factor a f);
        match Lu.factor_nopivot ~prec a with
        | f0 ->
          note (Precision.to_string prec, "no pivoting: residual")
            (Diagnostics.factor_residual a f0);
          note (Precision.to_string prec, "no pivoting: growth")
            (Diagnostics.growth_factor a f0)
        | exception Lu.Singular _ ->
          note (Precision.to_string prec, "no pivoting: breakdowns") 1.0)
      [ Precision.Single; Precision.Double ]
  done;
  Format.printf "@.worst case over %d random blocks (4..32):@." trials;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) worst []
  |> List.sort compare
  |> List.iter (fun ((prec, what), v) ->
         Format.printf "  %-6s %-24s %.3e@." prec what v);
  Format.printf
    "@.(machine epsilon: single %.1e, double %.1e — pivoted residuals sit at@ \
     a small multiple of epsilon; unpivoted growth can be orders of@ \
     magnitude larger, which is what implicit pivoting prevents at no@ \
     data-movement cost.)@."
    (Precision.eps Precision.Single)
    (Precision.eps Precision.Double)
