(* Diagonal-block extraction on an unbalanced sparsity pattern: compares
   the naive row-per-thread strategy against the paper's shared-memory
   strategy (Section III-C / Figure 3) on a circuit-like matrix with a few
   very dense hub rows, then runs the full preconditioned solve to show
   that block-Jacobi still pays off on such systems.

   Run with:  dune exec examples/circuit_extraction.exe *)

open Vblu_sparse
open Vblu_core
open Vblu_precond
open Vblu_krylov
module L = Vblu_simt.Launch

let () =
  let a = Vblu_workloads.Generators.circuit_like ~n:2048 ~hubs:16 ~hub_degree:500 () in
  Format.printf "circuit-like system: %a@." Csr.pp_stats a;

  (* A uniform 16-wide partition for the kernel comparison. *)
  let n, _ = Csr.dims a in
  let blocking = Supervariable.uniform ~n ~block_size:16 in
  let starts = blocking.Supervariable.starts
  and sizes = blocking.Supervariable.sizes in

  let naive =
    Extraction.extract ~strategy:Extraction.Row_per_thread a
      ~block_starts:starts ~block_sizes:sizes
  in
  let shared =
    Extraction.extract ~strategy:Extraction.Shared_memory a
      ~block_starts:starts ~block_sizes:sizes
  in
  Format.printf "row-per-thread: %a@." L.pp_stats naive.Extraction.stats;
  Format.printf "shared-memory : %a@." L.pp_stats shared.Extraction.stats;
  Format.printf "modelled speed-up of the shared-memory strategy: %.2fx@."
    (naive.Extraction.stats.L.time_us /. shared.Extraction.stats.L.time_us);

  (* Both strategies must extract identical blocks. *)
  let equal = ref true in
  for i = 0 to Array.length starts - 1 do
    let x = Batch.get_matrix naive.Extraction.blocks i in
    let y = Batch.get_matrix shared.Extraction.blocks i in
    if Vblu_smallblas.Matrix.max_abs_diff x y <> 0.0 then equal := false
  done;
  Format.printf "strategies agree on all %d blocks: %b@." (Array.length starts)
    !equal;

  (* And on a balanced matrix the gap closes — the imbalance is the point. *)
  let b = Vblu_workloads.Generators.laplacian_2d ~nx:32 ~ny:32 () in
  let nb, _ = Csr.dims b in
  let blk = Supervariable.uniform ~n:nb ~block_size:16 in
  let run strategy =
    (Extraction.extract ~strategy b
       ~block_starts:blk.Supervariable.starts ~block_sizes:blk.Supervariable.sizes)
      .Extraction.stats
  in
  let t_naive = (run Extraction.Row_per_thread).L.time_us in
  let t_shared = (run Extraction.Shared_memory).L.time_us in
  Format.printf
    "balanced Laplacian for contrast: row-per-thread %.1fus, shared %.1fus (%.2fx)@."
    t_naive t_shared (t_naive /. t_shared);

  (* End to end: the unbalanced system is still a fine block-Jacobi
     target. *)
  let rhs = Array.make n 1.0 in
  let precond, _ = Block_jacobi.create ~max_block_size:16 a in
  let _, with_bj = Idr.solve ~precond ~s:4 a rhs in
  let _, without = Idr.solve ~s:4 a rhs in
  Format.printf "IDR(4) with block-Jacobi(16): %a@." Solver.pp_stats with_bj;
  Format.printf "IDR(4) unpreconditioned:      %a@." Solver.pp_stats without
