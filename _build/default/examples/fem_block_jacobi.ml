(* End-to-end block-Jacobi preconditioning on a finite-element-style
   system: supervariable blocking discovers the node blocks, the batched
   LU factorizes them, and IDR(4) consumes the preconditioner — the
   pipeline of the paper's Section IV-D, on one matrix.

   Run with:  dune exec examples/fem_block_jacobi.exe *)

open Vblu_sparse
open Vblu_precond
open Vblu_krylov
open Vblu_workloads

let () =
  (* A system with 300 nodes of 5 variables each: every node's variables
     share a column pattern, so each node is one supervariable. *)
  let a = Generators.fem_blocks ~nodes:300 ~vars_per_node:5 ~coupling:0.3 () in
  let n, _ = Csr.dims a in
  let b = Array.make n 1.0 in
  Format.printf "system: %a@." Csr.pp_stats a;

  (* What the blocking finds. *)
  let sv = Supervariable.supervariables a in
  Format.printf "supervariables: %d (sizes %d..%d)@."
    (Array.length sv.Supervariable.starts)
    (Array.fold_left min max_int sv.Supervariable.sizes)
    (Array.fold_left max 0 sv.Supervariable.sizes);

  (* Sweep the agglomeration bound, as Table I does. *)
  List.iter
    (fun bound ->
      let precond, info = Block_jacobi.create ~max_block_size:bound a in
      let _, stats = Idr.solve ~precond ~s:4 a b in
      Format.printf "bound %2d: %4d blocks, setup %.4fs — %a@." bound
        (Array.length info.Block_jacobi.blocking.Supervariable.starts)
        precond.Preconditioner.setup_seconds Solver.pp_stats stats)
    [ 5; 10; 20; 30 ];

  (* Contrast with scalar Jacobi and with no preconditioning. *)
  let scalar, _ = Block_jacobi.create ~variant:Block_jacobi.Scalar a in
  let _, s_scalar = Idr.solve ~precond:scalar ~s:4 a b in
  Format.printf "scalar Jacobi: %a@." Solver.pp_stats s_scalar;
  let _, s_none = Idr.solve ~s:4 a b in
  Format.printf "unpreconditioned: %a@." Solver.pp_stats s_none;

  (* The same preconditioner also serves BiCGSTAB and GMRES. *)
  let precond, _ = Block_jacobi.create ~max_block_size:30 a in
  let _, s_bicg = Bicgstab.solve ~precond a b in
  Format.printf "BiCGSTAB, bound 30: %a@." Solver.pp_stats s_bicg;
  let _, s_gmres = Gmres.solve ~precond ~restart:30 a b in
  Format.printf "GMRES(30), bound 30: %a@." Solver.pp_stats s_gmres;

  (* Contrast with the classic global ILU(0): usually fewer iterations per
     solve, but its setup and its triangular sweeps are sequential over
     the whole system — the trade block-Jacobi's batched parallelism
     buys out of. *)
  let ilu = Ilu0.preconditioner a in
  let _, s_ilu = Idr.solve ~precond:ilu ~s:4 a b in
  Format.printf "ILU(0) for contrast (setup %.4fs): %a@."
    ilu.Preconditioner.setup_seconds Solver.pp_stats s_ilu
