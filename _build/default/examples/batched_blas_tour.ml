(* A tour of the batched-BLAS extensions beyond the paper's figures:
   multi-right-hand-side solves (TRSM), batched GEMM, and the future-work
   batched Cholesky — each validated on the spot and reported with its
   modelled kernel statistics.

   Run with:  dune exec examples/batched_blas_tour.exe *)

open Vblu_smallblas
open Vblu_core
module L = Vblu_simt.Launch

let () =
  let st = Random.State.make [| 404 |] in
  let count = 2_000 in
  let sizes = Batch.random_sizes ~state:st ~count ~min_size:4 ~max_size:32 () in

  (* --- TRSM: the factors are read once for all right-hand sides. --- *)
  let batch = Batch.random_general ~state:st sizes in
  let f = Batched_lu.factor batch in
  let nrhs = 4 in
  let rhs_sets = Array.init nrhs (fun _ -> Batch.vec_random ~state:st sizes) in
  let multi =
    Batched_trsm.solve ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
      rhs_sets
  in
  let single =
    Batched_trsv.solve ~factors:f.Batched_lu.factors ~pivots:f.Batched_lu.pivots
      rhs_sets.(0)
  in
  Format.printf "TRSM with %d rhs: %a@." nrhs L.pp_stats multi.Batched_trsm.stats;
  Format.printf "TRSV with 1 rhs:  %a@." L.pp_stats single.Batched_trsv.stats;
  Format.printf
    "amortization: %d rhs cost %.2fx of one (memory for the factors is paid \
     once)@."
    nrhs
    (multi.Batched_trsm.stats.L.time_us /. single.Batched_trsv.stats.L.time_us);
  let worst = ref 0.0 in
  Array.iteri
    (fun r rhs ->
      Array.iteri
        (fun i m ->
          let x = Batch.vec_get multi.Batched_trsm.solutions.(r) i in
          worst :=
            Float.max !worst
              (Diagnostics.solve_residual m x (Batch.vec_get rhs i)))
        (Batch.to_matrices batch))
    rhs_sets;
  Format.printf "worst residual over %d solves: %.2e@.@." (count * nrhs) !worst;

  (* --- GEMM: level-3 batched BLAS in the same register style. --- *)
  let b2 =
    Batch.of_matrices
      (Array.map (fun s -> Matrix.random_general ~state:st s) sizes)
  in
  let prod = Batched_gemm.multiply ~a:batch ~b:b2 () in
  Format.printf "GEMM: %a@." L.pp_stats prod.Batched_gemm.stats;
  let worst_g = ref 0.0 in
  Array.iteri
    (fun i ma ->
      let expect = Matrix.matmul ma (Batch.get_matrix b2 i) in
      worst_g :=
        Float.max !worst_g
          (Matrix.max_abs_diff expect (Batch.get_matrix prod.Batched_gemm.products i)))
    (Batch.to_matrices batch);
  Format.printf "worst |C - A·B| over the batch: %.2e@.@." !worst_g;

  (* --- Cholesky: the paper's future-work kernel, on SPD blocks. --- *)
  let spd =
    Batch.of_matrices
      (Array.map
         (fun s ->
           let r = Matrix.random ~state:st s s in
           let p = Matrix.matmul r (Matrix.transpose r) in
           Matrix.init s s (fun i j ->
               Matrix.get p i j +. if i = j then float_of_int s else 0.0))
         sizes)
  in
  let chol = Batched_cholesky.factor spd in
  let lu_spd = Batched_lu.factor spd in
  Format.printf "Cholesky factorization: %a@." L.pp_stats
    chol.Batched_cholesky.stats;
  Format.printf "LU on the same batch:   %a@." L.pp_stats
    lu_spd.Batched_lu.stats;
  Format.printf
    "Cholesky is %.2fx faster in modelled time — but note its GFLOPS look \
     lower because it is credited n³/3 useful flops while SIMT lane masks \
     cannot halve the issue slots.@."
    (lu_spd.Batched_lu.stats.L.time_us /. chol.Batched_cholesky.stats.L.time_us);
  let rhs = Batch.vec_random ~state:st sizes in
  let sol = Batched_cholesky.solve ~factors:chol.Batched_cholesky.factors rhs in
  let worst_c = ref 0.0 in
  Array.iteri
    (fun i m ->
      worst_c :=
        Float.max !worst_c
          (Diagnostics.solve_residual m
             (Batch.vec_get sol.Batched_trsv.solutions i)
             (Batch.vec_get rhs i)))
    (Batch.to_matrices spd);
  Format.printf "worst LLᵀ-solve residual: %.2e@." !worst_c
