examples/precision_study.ml: Batch Batched_lu Batched_trsv Diagnostics Float Format Hashtbl List Lu Matrix Option Precision Random Vblu_core Vblu_simt Vblu_smallblas
