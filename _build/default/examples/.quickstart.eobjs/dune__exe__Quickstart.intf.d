examples/quickstart.mli:
