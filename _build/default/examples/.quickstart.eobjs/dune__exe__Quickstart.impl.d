examples/quickstart.ml: Batch Batched_lu Batched_trsv Diagnostics Float Format Lu Random Vblu_core Vblu_simt Vblu_smallblas
