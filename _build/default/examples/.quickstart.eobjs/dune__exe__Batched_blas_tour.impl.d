examples/batched_blas_tour.ml: Array Batch Batched_cholesky Batched_gemm Batched_lu Batched_trsm Batched_trsv Diagnostics Float Format Matrix Random Vblu_core Vblu_simt Vblu_smallblas
