examples/fem_block_jacobi.ml: Array Bicgstab Block_jacobi Csr Format Generators Gmres Idr Ilu0 List Preconditioner Solver Supervariable Vblu_krylov Vblu_precond Vblu_sparse Vblu_workloads
