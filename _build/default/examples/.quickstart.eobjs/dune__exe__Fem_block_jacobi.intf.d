examples/fem_block_jacobi.mli:
