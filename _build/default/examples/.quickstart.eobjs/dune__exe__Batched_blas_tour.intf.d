examples/batched_blas_tour.mli:
