examples/circuit_extraction.ml: Array Batch Block_jacobi Csr Extraction Format Idr Solver Supervariable Vblu_core Vblu_krylov Vblu_precond Vblu_simt Vblu_smallblas Vblu_sparse Vblu_workloads
