examples/circuit_extraction.mli:
