examples/precision_study.mli:
