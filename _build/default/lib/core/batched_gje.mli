(** Batched Gauss-Jordan elimination: the inversion-based block-Jacobi
    variant [Anzt et al., PMAM 2017].

    Setup explicitly inverts every diagonal block ([2 n³] flops — three
    times the LU cost) so the per-iteration preconditioner application
    becomes a dense matrix–vector product: no triangular dependency chain,
    perfectly parallel, but potentially less stable than the
    factorization-based approach.  This is the trade-off the paper's
    Section II-C discusses; the ablation bench quantifies it.

    Numerics via {!Vblu_smallblas.Gauss_jordan}; counters charged
    analytically for the register GJE kernel (lane = row, implicit
    pivoting, every step updates the full padded register tile). *)

open Vblu_smallblas
open Vblu_simt

type result = {
  inverses : Matrix.t array;
      (** complete in [Exact] mode; representatives only in [Sampled]. *)
  stats : Launch.stats;
  exact : bool;
}

type apply_result = {
  products : Batch.vec;
  apply_stats : Launch.stats;
  apply_exact : bool;
}

val invert :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  Batch.t ->
  result
(** Invert every block.  @raise Vblu_smallblas.Error.Singular on a
    singular block. *)

val apply :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  result ->
  Batch.vec ->
  apply_result
(** Batched GEMV with the precomputed inverses. *)
