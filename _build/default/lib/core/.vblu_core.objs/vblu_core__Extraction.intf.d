lib/core/extraction.mli: Batch Config Csr Launch Sampling Vblu_par Vblu_simt Vblu_smallblas Vblu_sparse
