lib/core/charge.ml: Config Counter Precision Vblu_simt Vblu_smallblas Warp
