lib/core/batched_gh.mli: Batch Config Gauss_huard Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas
