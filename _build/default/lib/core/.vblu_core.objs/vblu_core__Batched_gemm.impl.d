lib/core/batched_gemm.ml: Array Batch Config Counter Gmem Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
