lib/core/charge.mli: Vblu_simt Warp
