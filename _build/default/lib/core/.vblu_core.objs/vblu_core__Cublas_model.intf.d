lib/core/cublas_model.mli: Batch Config Launch Precision Sampling Vblu_simt Vblu_smallblas
