lib/core/batched_cholesky.mli: Batch Batched_trsv Config Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas
