lib/core/batched_cholesky.ml: Array Batch Batched_trsv Cholesky Config Counter Error Flops Gmem Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
