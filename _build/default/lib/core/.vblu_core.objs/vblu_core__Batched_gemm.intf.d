lib/core/batched_gemm.mli: Batch Config Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas
