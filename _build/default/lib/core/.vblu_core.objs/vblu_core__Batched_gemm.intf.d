lib/core/batched_gemm.mli: Batch Config Launch Precision Sampling Vblu_simt Vblu_smallblas
