lib/core/extraction.ml: Array Batch Charge Config Csr Gmem Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas Vblu_sparse Warp
