lib/core/cublas_model.ml: Array Batch Charge Config Counter Flops Launch List Lu Precision Sampling Trsv Vblu_par Vblu_simt Vblu_smallblas Warp
