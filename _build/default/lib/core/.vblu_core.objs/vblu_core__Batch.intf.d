lib/core/batch.mli: Matrix Random Vblu_smallblas Vector
