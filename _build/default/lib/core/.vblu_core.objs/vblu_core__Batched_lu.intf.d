lib/core/batched_lu.mli: Batch Config Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas
