lib/core/batched_lu.mli: Batch Config Launch Precision Sampling Vblu_simt Vblu_smallblas
