lib/core/batched_gh.ml: Array Batch Charge Config Counter Flops Gauss_huard Launch Lazy Matrix Precision Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
