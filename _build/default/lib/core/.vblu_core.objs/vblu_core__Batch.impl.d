lib/core/batch.ml: Array Lazy Matrix Random Vblu_smallblas
