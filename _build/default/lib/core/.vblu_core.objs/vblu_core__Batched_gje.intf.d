lib/core/batched_gje.mli: Batch Config Launch Matrix Precision Sampling Vblu_par Vblu_simt Vblu_smallblas
