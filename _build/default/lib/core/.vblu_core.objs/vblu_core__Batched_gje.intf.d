lib/core/batched_gje.mli: Batch Config Launch Matrix Precision Sampling Vblu_simt Vblu_smallblas
