lib/core/batched_trsv.mli: Batch Config Launch Precision Sampling Vblu_simt Vblu_smallblas
