lib/core/batched_lu.ml: Array Batch Config Counter Flops Gmem Launch Precision Printf Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
