lib/core/batched_gje.ml: Array Batch Charge Config Counter Flops Gauss_jordan Launch Matrix Precision Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
