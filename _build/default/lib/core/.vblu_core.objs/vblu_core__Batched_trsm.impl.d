lib/core/batched_trsm.ml: Array Batch Config Counter Error Flops Gmem Launch Precision Sampling Vblu_par Vblu_simt Vblu_smallblas Warp
