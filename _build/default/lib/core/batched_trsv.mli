(** The paper's variable-size batched triangular solves (Section III-B).

    One warp per block; thread [k] holds element [k] of the right-hand
    side in a register.  The triangular factors offer no reuse, so each
    matrix element is read exactly once — one coalesced column load per
    elimination step (the "eager"/AXPY variant; column-major storage makes
    the column reads coalesced, which is why the paper selects it).  The
    pivoting permutation of the factorization is applied {e while reading}
    the right-hand side: each lane simply loads its permuted element, at no
    extra cost.

    The DOT-based "lazy" variant is provided for the paper's Figure 2
    ablation: it reads one {e row} per step (non-coalesced) and needs a
    warp reduction per step. *)

open Vblu_smallblas
open Vblu_simt

type variant =
  | Eager  (** AXPY-based, column reads; the paper's kernel. *)
  | Lazy   (** DOT-based, row reads; ablation baseline. *)

type result = {
  solutions : Batch.vec;
      (** per-block solutions; complete in [Exact] mode, representatives
          only in [Sampled] mode. *)
  stats : Launch.stats;
  exact : bool;
}

val solve :
  ?cfg:Config.t ->
  ?pool:Vblu_par.Pool.t ->
  ?prec:Precision.t ->
  ?mode:Sampling.mode ->
  ?variant:variant ->
  factors:Batch.t ->
  pivots:int array array ->
  Batch.vec ->
  result
(** [solve ~factors ~pivots rhs] solves every block system using the packed
    LU factors and pivot permutations of {!Batched_lu.factor} (GETRS:
    permute, unit-lower solve, upper solve).  [?pool] distributes blocks
    over domains with bit-identical results; an empty batch is a no-op.
    @raise Invalid_argument on shape mismatch between factors and rhs.
    @raise Vblu_smallblas.Error.Singular on a zero diagonal. *)
