(** Symmetric reorderings for bandwidth/locality.

    The paper notes (Section II-A) that supervariable blocking works best
    when variables that are close in the matrix ordering belong to nearby
    mesh elements, and that reverse Cuthill-McKee or natural orderings
    preserve this locality.  This module provides RCM so the pipeline can
    reorder a scrambled matrix before blocking. *)

val reverse_cuthill_mckee : Csr.t -> int array
(** [reverse_cuthill_mckee a] returns a permutation [p] (usable with
    {!Csr.permute_symmetric}) computed on the symmetrized pattern of [a]:
    breadth-first traversal from a pseudo-peripheral vertex of each
    connected component, neighbors visited in increasing-degree order,
    then the whole order reversed.
    @raise Invalid_argument if [a] is not square. *)

val natural : int -> int array
(** The identity permutation. *)

val random : ?state:Random.State.t -> int -> int array
(** A uniformly random permutation — used by tests and by examples that
    deliberately destroy locality. *)
