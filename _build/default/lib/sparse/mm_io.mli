(** Matrix Market (coordinate) I/O.

    The paper's Table I suite comes from the SuiteSparse collection, whose
    interchange format is Matrix Market.  We cannot ship those matrices in
    a sealed container, but supporting the format means a user with the
    collection on disk can run the full Table I / Figures 8–9 pipeline on
    the real inputs. *)

val read : string -> Csr.t
(** Reads a [coordinate real/integer/pattern] Matrix Market file, expanding
    [symmetric] and [skew-symmetric] storage to the full matrix (pattern
    entries get value 1.0).  @raise Failure with a descriptive message on a
    malformed file or an unsupported header ([complex], [array]). *)

val write : string -> Csr.t -> unit
(** Writes [coordinate real general] with 1-based indices. *)

val read_string : string -> Csr.t
(** {!read} from an in-memory buffer; used by the tests. *)

val write_string : Csr.t -> string
