open Vblu_smallblas

type t = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let validate t =
  let nnz = Array.length t.col_idx in
  if Array.length t.values <> nnz then
    invalid_arg "Csr.create: col_idx/values length mismatch";
  if Array.length t.row_ptr <> t.n_rows + 1 then
    invalid_arg "Csr.create: row_ptr length must be n_rows + 1";
  if t.row_ptr.(0) <> 0 || t.row_ptr.(t.n_rows) <> nnz then
    invalid_arg "Csr.create: row_ptr must start at 0 and end at nnz";
  for i = 0 to t.n_rows - 1 do
    if t.row_ptr.(i) > t.row_ptr.(i + 1) then
      invalid_arg "Csr.create: row_ptr not monotone";
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      if j < 0 || j >= t.n_cols then invalid_arg "Csr.create: column out of range";
      if k > t.row_ptr.(i) && t.col_idx.(k - 1) >= j then
        invalid_arg "Csr.create: columns not strictly increasing within a row"
    done
  done

let create ~n_rows ~n_cols ~row_ptr ~col_idx ~values =
  if n_rows < 0 || n_cols < 0 then invalid_arg "Csr.create: negative dimension";
  let t = { n_rows; n_cols; row_ptr; col_idx; values } in
  validate t;
  t

let nnz t = Array.length t.values

let dims t = (t.n_rows, t.n_cols)

let get t i j =
  if i < 0 || i >= t.n_rows || j < 0 || j >= t.n_cols then
    invalid_arg "Csr.get: out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let found = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      found := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let of_dense ?(threshold = 0.0) m =
  let rows, cols = Matrix.dims m in
  let entries = ref [] in
  let count = ref 0 in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      let v = Matrix.unsafe_get m i j in
      if Float.abs v > threshold || (threshold = 0.0 && v <> 0.0) then begin
        entries := (i, j, v) :: !entries;
        incr count
      end
    done
  done;
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make !count 0 in
  let values = Array.make !count 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    !entries;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { n_rows = rows; n_cols = cols; row_ptr; col_idx; values }

let to_dense t =
  let m = Matrix.create t.n_rows t.n_cols in
  for i = 0 to t.n_rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Matrix.unsafe_set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let spmv_into ?(prec = Precision.Double) t x y =
  if Array.length x <> t.n_cols || Array.length y <> t.n_rows then
    invalid_arg "Csr.spmv: dimension mismatch";
  for i = 0 to t.n_rows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := Precision.fma prec t.values.(k) x.(t.col_idx.(k)) !acc
    done;
    y.(i) <- !acc
  done

let spmv ?(prec = Precision.Double) t x =
  let y = Array.make t.n_rows 0.0 in
  spmv_into ~prec t x y;
  y

let transpose t =
  let row_ptr = Array.make (t.n_cols + 1) 0 in
  let m = nnz t in
  for k = 0 to m - 1 do
    row_ptr.(t.col_idx.(k) + 1) <- row_ptr.(t.col_idx.(k) + 1) + 1
  done;
  for j = 0 to t.n_cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j + 1) + row_ptr.(j)
  done;
  let fill = Array.copy row_ptr in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0.0 in
  for i = 0 to t.n_rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      col_idx.(fill.(j)) <- i;
      values.(fill.(j)) <- t.values.(k);
      fill.(j) <- fill.(j) + 1
    done
  done;
  { n_rows = t.n_cols; n_cols = t.n_rows; row_ptr; col_idx; values }

let diagonal t =
  let n = min t.n_rows t.n_cols in
  Array.init n (fun i -> get t i i)

let is_permutation perm n =
  Array.length perm = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      p >= 0 && p < n && not seen.(p)
      &&
      (seen.(p) <- true;
       true))
    perm

let permute_symmetric t p =
  if t.n_rows <> t.n_cols then
    invalid_arg "Csr.permute_symmetric: matrix not square";
  if not (is_permutation p t.n_rows) then
    invalid_arg "Csr.permute_symmetric: not a permutation";
  let n = t.n_rows in
  (* inv.(old) = new position of old index *)
  let inv = Array.make n 0 in
  Array.iteri (fun k old -> inv.(old) <- k) p;
  let row_ptr = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    let old = p.(k) in
    row_ptr.(k + 1) <- row_ptr.(k) + (t.row_ptr.(old + 1) - t.row_ptr.(old))
  done;
  let m = nnz t in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0.0 in
  for k = 0 to n - 1 do
    let old = t.row_ptr.(p.(k)) in
    let len = row_ptr.(k + 1) - row_ptr.(k) in
    (* Gather the row, remap columns, then sort by new column index. *)
    let pairs =
      Array.init len (fun q -> (inv.(t.col_idx.(old + q)), t.values.(old + q)))
    in
    Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
    Array.iteri
      (fun q (j, v) ->
        col_idx.(row_ptr.(k) + q) <- j;
        values.(row_ptr.(k) + q) <- v)
      pairs
  done;
  { n_rows = n; n_cols = n; row_ptr; col_idx; values }

let extract_block t ~row_start ~size =
  if row_start < 0 || row_start + size > t.n_rows || row_start + size > t.n_cols
  then invalid_arg "Csr.extract_block: block out of range";
  Matrix.init size size (fun i j -> get t (row_start + i) (row_start + j))

let row_nnz t =
  Array.init t.n_rows (fun i -> t.row_ptr.(i + 1) - t.row_ptr.(i))

let row_imbalance t =
  if t.n_rows = 0 then 1.0
  else begin
    let counts = row_nnz t in
    let maxc = Array.fold_left max 0 counts in
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then 1.0
    else float_of_int maxc /. (float_of_int total /. float_of_int t.n_rows)
  end

let bandwidth t =
  let b = ref 0 in
  for i = 0 to t.n_rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      b := max !b (abs (i - t.col_idx.(k)))
    done
  done;
  !b

let is_symmetric_pattern t =
  t.n_rows = t.n_cols
  &&
  let tt = transpose t in
  let ok = ref true in
  for i = 0 to t.n_rows - 1 do
    if
      t.row_ptr.(i + 1) - t.row_ptr.(i) <> tt.row_ptr.(i + 1) - tt.row_ptr.(i)
    then ok := false
    else
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        if t.col_idx.(k) <> tt.col_idx.(k - t.row_ptr.(i) + tt.row_ptr.(i)) then
          ok := false
      done
  done;
  !ok

let equal ?(tol = 0.0) a b =
  a.n_rows = b.n_rows && a.n_cols = b.n_cols
  &&
  let ok = ref true in
  for i = 0 to a.n_rows - 1 do
    (* Compare row by row through [get], so differing explicit-zero
       patterns still compare equal. *)
    let check t other =
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        if Float.abs (t.values.(k) -. get other i j) > tol then ok := false
      done
    in
    check a b;
    check b a
  done;
  !ok

let pp_stats ppf t =
  Format.fprintf ppf "%dx%d, nnz=%d, imbalance=%.2f, bandwidth=%d" t.n_rows
    t.n_cols (nnz t) (row_imbalance t) (bandwidth t)
