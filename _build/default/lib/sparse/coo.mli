(** Coordinate-format builder for sparse matrices.

    The matrix generators assemble entries in arbitrary order (finite
    elements touch each node several times); this builder accumulates
    [(row, col, value)] triplets, sums duplicates, and converts to
    {!Csr.t}. *)

type t

val create : n_rows:int -> n_cols:int -> t

val add : t -> int -> int -> float -> unit
(** [add t i j v] accumulates [v] into entry (i,j).
    @raise Invalid_argument if out of range. *)

val add_sym : t -> int -> int -> float -> unit
(** [add_sym t i j v] accumulates into both (i,j) and (j,i); the diagonal
    is added once. *)

val entry_count : t -> int
(** Number of accumulated triplets (before duplicate merging). *)

val to_csr : ?drop_zeros:bool -> t -> Csr.t
(** Sort, merge duplicates by summation, and build the CSR matrix.
    [drop_zeros] (default false) removes entries that cancelled to 0. *)
