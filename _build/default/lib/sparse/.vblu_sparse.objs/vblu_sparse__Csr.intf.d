lib/sparse/csr.mli: Format Matrix Precision Vblu_smallblas Vector
