lib/sparse/mm_io.mli: Csr
