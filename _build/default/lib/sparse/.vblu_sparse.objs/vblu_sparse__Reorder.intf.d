lib/sparse/reorder.mli: Csr Random
