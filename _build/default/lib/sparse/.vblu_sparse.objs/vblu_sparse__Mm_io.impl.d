lib/sparse/mm_io.ml: Array Buffer Coo Csr In_channel List Printf String
