lib/sparse/reorder.ml: Array Csr Lazy List Queue Random
