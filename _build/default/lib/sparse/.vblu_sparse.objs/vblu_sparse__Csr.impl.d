lib/sparse/csr.ml: Array Float Format List Matrix Precision Vblu_smallblas
