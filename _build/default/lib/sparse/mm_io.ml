type symmetry = General | Symmetric | Skew
type field = Real | Pattern

let parse_header line =
  match String.split_on_char ' ' (String.lowercase_ascii (String.trim line)) with
  | "%%matrixmarket" :: "matrix" :: fmt :: field :: sym :: _ ->
    if fmt <> "coordinate" then failwith "Mm_io: only coordinate format is supported";
    let field =
      match field with
      | "real" | "integer" -> Real
      | "pattern" -> Pattern
      | other -> failwith ("Mm_io: unsupported field " ^ other)
    in
    let sym =
      match sym with
      | "general" -> General
      | "symmetric" -> Symmetric
      | "skew-symmetric" -> Skew
      | other -> failwith ("Mm_io: unsupported symmetry " ^ other)
    in
    (field, sym)
  | _ -> failwith "Mm_io: missing %%MatrixMarket header"

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let read_lines next_line =
  let header =
    match next_line () with
    | Some l -> l
    | None -> failwith "Mm_io: empty input"
  in
  let field, sym = parse_header header in
  let rec skip_comments () =
    match next_line () with
    | None -> failwith "Mm_io: missing size line"
    | Some l ->
      let l = String.trim l in
      if l = "" || l.[0] = '%' then skip_comments () else l
  in
  let size_line = skip_comments () in
  let n_rows, n_cols, count =
    match tokens size_line with
    | [ r; c; z ] -> (int_of_string r, int_of_string c, int_of_string z)
    | _ -> failwith "Mm_io: malformed size line"
  in
  let coo = Coo.create ~n_rows ~n_cols in
  let parse_entry l =
    match tokens l, field with
    | [ i; j ], Pattern -> (int_of_string i - 1, int_of_string j - 1, 1.0)
    | [ i; j; v ], (Real | Pattern) ->
      (int_of_string i - 1, int_of_string j - 1, float_of_string v)
    | _ -> failwith ("Mm_io: malformed entry line: " ^ l)
  in
  let seen = ref 0 in
  let rec loop () =
    match next_line () with
    | None -> ()
    | Some l ->
      let l = String.trim l in
      if l <> "" && l.[0] <> '%' then begin
        let i, j, v = parse_entry l in
        incr seen;
        (match sym with
        | General -> Coo.add coo i j v
        | Symmetric ->
          Coo.add coo i j v;
          if i <> j then Coo.add coo j i v
        | Skew ->
          Coo.add coo i j v;
          if i <> j then Coo.add coo j i (-.v))
      end;
      loop ()
  in
  loop ();
  if !seen <> count then
    failwith
      (Printf.sprintf "Mm_io: header announced %d entries, found %d" count !seen);
  Coo.to_csr coo

let read path =
  let ic = open_in path in
  let next_line () = In_channel.input_line ic in
  match read_lines next_line with
  | csr ->
    close_in ic;
    csr
  | exception e ->
    close_in ic;
    raise e

let read_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let next_line () =
    match !lines with
    | [] -> None
    | l :: rest ->
      lines := rest;
      Some l
  in
  read_lines next_line

let write_channel oc (m : Csr.t) =
  output_string oc "%%MatrixMarket matrix coordinate real general\n";
  Printf.fprintf oc "%d %d %d\n" m.n_rows m.n_cols (Csr.nnz m);
  for i = 0 to m.n_rows - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Printf.fprintf oc "%d %d %.17g\n" (i + 1) (m.col_idx.(k) + 1) m.values.(k)
    done
  done

let write path m =
  let oc = open_out path in
  (try write_channel oc m
   with e ->
     close_out oc;
     raise e);
  close_out oc

let write_string m =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "%%MatrixMarket matrix coordinate real general\n";
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" m.Csr.n_rows m.Csr.n_cols (Csr.nnz m));
  for i = 0 to m.Csr.n_rows - 1 do
    for k = m.Csr.row_ptr.(i) to m.Csr.row_ptr.(i + 1) - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%d %d %.17g\n" (i + 1)
           (m.Csr.col_idx.(k) + 1)
           m.Csr.values.(k))
    done
  done;
  Buffer.contents buf
