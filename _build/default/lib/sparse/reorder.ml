let symmetrized_adjacency (a : Csr.t) =
  let n = a.n_rows in
  let at = Csr.transpose a in
  let neighbors = Array.make n [] in
  let add i j = if i <> j then neighbors.(i) <- j :: neighbors.(i) in
  for i = 0 to n - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      add i a.col_idx.(k)
    done;
    for k = at.Csr.row_ptr.(i) to at.Csr.row_ptr.(i + 1) - 1 do
      add i at.Csr.col_idx.(k)
    done
  done;
  Array.map (fun l -> List.sort_uniq compare l |> Array.of_list) neighbors

let reverse_cuthill_mckee (a : Csr.t) =
  if a.n_rows <> a.n_cols then
    invalid_arg "Reorder.reverse_cuthill_mckee: matrix not square";
  let n = a.n_rows in
  let adj = symmetrized_adjacency a in
  let degree = Array.map Array.length adj in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let pos = ref 0 in
  (* BFS from [start] over unvisited vertices, neighbors in increasing
     degree order.  When [record], append visit order to [order].  Returns
     the vertices touched (so a probe run can be undone) and the last
     vertex reached (a pseudo-peripheral candidate). *)
  let bfs start ~record =
    let q = Queue.create () in
    Queue.push start q;
    visited.(start) <- true;
    let touched = ref [ start ] in
    let last = ref start in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      last := v;
      if record then begin
        order.(!pos) <- v;
        incr pos
      end;
      Array.to_list adj.(v)
      |> List.filter (fun w -> not visited.(w))
      |> List.sort (fun x y -> compare degree.(x) degree.(y))
      |> List.iter (fun w ->
             visited.(w) <- true;
             touched := w :: !touched;
             Queue.push w q)
    done;
    (!touched, !last)
  in
  for v = 0 to n - 1 do
    if not visited.(v) then begin
      (* One pseudo-peripheral refinement: probe BFS to find a far vertex,
         rewind, then record the real BFS from there. *)
      let touched, far = bfs v ~record:false in
      List.iter (fun w -> visited.(w) <- false) touched;
      let _, _ = bfs far ~record:true in
      ()
    end
  done;
  assert (!pos = n);
  (* Reverse for RCM. *)
  Array.init n (fun k -> order.(n - 1 - k))

let natural n = Array.init n (fun i -> i)

let default_state = lazy (Random.State.make [| 0x5eed; 0x9e04de4 |])

let random ?state n =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  let p = natural n in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p
