(** Compressed Sparse Row matrices.

    CSR is the storage format the paper assumes for the system matrix: the
    diagonal-block extraction kernel (Section III-C) is specifically about
    pulling dense blocks out of this layout.  Rows keep their column
    indices sorted; duplicate entries are disallowed by construction. *)

open Vblu_smallblas

type t = private {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;  (** length [n_rows + 1]; row [i] occupies
                            [row_ptr.(i) .. row_ptr.(i+1) - 1]. *)
  col_idx : int array;  (** column index of each stored entry, sorted
                            within each row. *)
  values : float array;
}

val create :
  n_rows:int -> n_cols:int -> row_ptr:int array -> col_idx:int array ->
  values:float array -> t
(** Builds a CSR matrix after validating the invariants (monotone
    [row_ptr], in-range and strictly increasing column indices per row,
    matching array lengths).  @raise Invalid_argument if any fails. *)

val nnz : t -> int

val dims : t -> int * int

val get : t -> int -> int -> float
(** [get a i j] is the stored value at (i,j), or [0.] — binary search
    within the row. *)

val of_dense : ?threshold:float -> Matrix.t -> t
(** Keeps entries with magnitude above [threshold] (default: exact
    zeros dropped). *)

val to_dense : t -> Matrix.t
(** For tests and small examples only. *)

val spmv : ?prec:Precision.t -> t -> Vector.t -> Vector.t
(** Sparse matrix–vector product [y = A·x]. *)

val spmv_into : ?prec:Precision.t -> t -> Vector.t -> Vector.t -> unit
(** [spmv_into a x y] overwrites [y] with [A·x] without allocating. *)

val transpose : t -> t

val diagonal : t -> Vector.t
(** The main diagonal (zeros where absent). *)

val permute_symmetric : t -> int array -> t
(** [permute_symmetric a p] is [P·A·Pᵀ] where row/column [k] of the result
    is row/column [p.(k)] of [a] — the symmetric reordering used before
    supervariable blocking.  @raise Invalid_argument if [a] is not square
    or [p] is not a permutation. *)

val extract_block : t -> row_start:int -> size:int -> Matrix.t
(** Dense copy of the square diagonal block
    [a(row_start .. row_start+size-1, row_start .. row_start+size-1)] —
    the reference against which the extraction kernels are validated. *)

val row_nnz : t -> int array

val row_imbalance : t -> float
(** [max row nnz / mean row nnz] — the load-imbalance statistic motivating
    the shared-memory extraction strategy (≫1 for circuit-like systems). *)

val bandwidth : t -> int
(** Maximum [|i - j|] over stored entries. *)

val is_symmetric_pattern : t -> bool

val equal : ?tol:float -> t -> t -> bool
(** Same dimensions and elementwise agreement within [tol] (default 0). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: dimensions, nnz, imbalance, bandwidth. *)
