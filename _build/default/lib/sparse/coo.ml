type t = {
  n_rows : int;
  n_cols : int;
  mutable rows : int array;
  mutable cols : int array;
  mutable vals : float array;
  mutable len : int;
}

let create ~n_rows ~n_cols =
  if n_rows < 0 || n_cols < 0 then invalid_arg "Coo.create: negative dimension";
  { n_rows; n_cols; rows = Array.make 64 0; cols = Array.make 64 0;
    vals = Array.make 64 0.0; len = 0 }

let grow t =
  let cap = Array.length t.rows in
  let ncap = 2 * cap in
  let extend a zero =
    let b = Array.make ncap zero in
    Array.blit a 0 b 0 cap;
    b
  in
  t.rows <- extend t.rows 0;
  t.cols <- extend t.cols 0;
  t.vals <- extend t.vals 0.0

let add t i j v =
  if i < 0 || i >= t.n_rows || j < 0 || j >= t.n_cols then
    invalid_arg "Coo.add: entry out of range";
  if t.len = Array.length t.rows then grow t;
  t.rows.(t.len) <- i;
  t.cols.(t.len) <- j;
  t.vals.(t.len) <- v;
  t.len <- t.len + 1

let add_sym t i j v =
  add t i j v;
  if i <> j then add t j i v

let entry_count t = t.len

let to_csr ?(drop_zeros = false) t =
  let n = t.len in
  let order = Array.init n (fun k -> k) in
  let cmp a b =
    let c = compare t.rows.(a) t.rows.(b) in
    if c <> 0 then c else compare t.cols.(a) t.cols.(b)
  in
  Array.sort cmp order;
  (* Merge runs of equal (i,j) by summation. *)
  let mrows = Array.make n 0 in
  let mcols = Array.make n 0 in
  let mvals = Array.make n 0.0 in
  let m = ref 0 in
  Array.iter
    (fun k ->
      let i = t.rows.(k) and j = t.cols.(k) and v = t.vals.(k) in
      if !m > 0 && mrows.(!m - 1) = i && mcols.(!m - 1) = j then
        mvals.(!m - 1) <- mvals.(!m - 1) +. v
      else begin
        mrows.(!m) <- i;
        mcols.(!m) <- j;
        mvals.(!m) <- v;
        incr m
      end)
    order;
  let keep k = (not drop_zeros) || mvals.(k) <> 0.0 in
  let kept = ref 0 in
  for k = 0 to !m - 1 do
    if keep k then incr kept
  done;
  let row_ptr = Array.make (t.n_rows + 1) 0 in
  let col_idx = Array.make !kept 0 in
  let values = Array.make !kept 0.0 in
  let pos = ref 0 in
  for k = 0 to !m - 1 do
    if keep k then begin
      row_ptr.(mrows.(k) + 1) <- row_ptr.(mrows.(k) + 1) + 1;
      col_idx.(!pos) <- mcols.(k);
      values.(!pos) <- mvals.(k);
      incr pos
    end
  done;
  for i = 0 to t.n_rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  Csr.create ~n_rows:t.n_rows ~n_cols:t.n_cols ~row_ptr ~col_idx ~values
