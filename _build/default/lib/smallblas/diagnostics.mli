(** Numerical-quality diagnostics for factorizations and solves.

    Used by the test suite and by the stability ablation (implicit vs
    explicit pivoting vs no pivoting). *)

val factor_residual : Matrix.t -> Lu.factors -> float
(** [factor_residual a f] is [‖P·a − L·U‖_F / ‖a‖_F] — the normwise backward
    error of the factorization (≈ machine epsilon for a stable LU). *)

val solve_residual : Matrix.t -> Vector.t -> Vector.t -> float
(** [solve_residual a x b] is [‖a·x − b‖∞ / (‖a‖∞ ‖x‖∞ + ‖b‖∞)] — the
    normwise relative residual of a computed solution. *)

val growth_factor : Matrix.t -> Lu.factors -> float
(** The element-growth factor [max|U| / max|A|] of the factorization; the
    quantity partial pivoting keeps small in practice. *)

val condition_estimate : Matrix.t -> float
(** A one-norm condition-number estimate [‖A‖₁ · ‖A⁻¹‖₁], computed via
    explicit inversion — fine for the ≤ 32×32 blocks this library targets.
    Returns [infinity] for singular blocks. *)
