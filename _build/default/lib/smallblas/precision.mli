(** Floating-point precision selection.

    The paper evaluates every kernel in IEEE single and double precision.
    OCaml's native [float] is IEEE binary64; single precision is emulated by
    rounding the result of every arithmetic operation through binary32
    (via [Int32.bits_of_float], which performs correct round-to-nearest-even
    conversion).  This gives bit-accurate single-precision *results* for the
    straight-line kernels used here, at the cost of one extra conversion per
    operation — the performance cost is irrelevant because kernel timing
    comes from the {!Vblu_simt} model, not from host wall-clock. *)

type t =
  | Single  (** IEEE binary32, emulated by rounding after every operation. *)
  | Double  (** IEEE binary64, OCaml's native [float]. *)

val round : t -> float -> float
(** [round p x] is [x] rounded to precision [p].  [round Double] is the
    identity; [round Single] round-trips through binary32. *)

val eps : t -> float
(** Unit roundoff: [2^-24] for {!Single}, [2^-53] for {!Double}. *)

val bytes : t -> int
(** Storage size of one scalar: 4 or 8. *)

val to_string : t -> string
(** ["single"] or ["double"]. *)

val pp : Format.formatter -> t -> unit

val add : t -> float -> float -> float
val sub : t -> float -> float -> float
val mul : t -> float -> float -> float
val div : t -> float -> float -> float

val fma : t -> float -> float -> float -> float
(** [fma p a b c] is [round p (a *. b +. c)], i.e. a fused multiply-add in
    the target precision (GPUs issue FFMA/DFMA with a single rounding). *)
