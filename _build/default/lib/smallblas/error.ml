exception Singular of int
