type t = float array

let create n = Array.make n 0.0
let init = Array.init
let copy = Array.copy
let dim = Array.length
let fill x v = Array.fill x 0 (Array.length x) v

let blit ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Vector.blit: dimension mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let default_state = lazy (Random.State.make [| 0x5eed; 0xba7c4 |])

let random ?state ?(lo = -1.0) ?(hi = 1.0) n =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  Array.init n (fun _ -> lo +. ((hi -. lo) *. Random.State.float st 1.0))

let dot ?(prec = Precision.Double) x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector.dot: dimension mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := Precision.fma prec x.(i) y.(i) !acc
  done;
  !acc

let nrm2 ?(prec = Precision.Double) x =
  Precision.round prec (sqrt (dot ~prec x x))

let norm_inf x = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 x

let scal ?(prec = Precision.Double) alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- Precision.mul prec alpha x.(i)
  done

let axpy ?(prec = Precision.Double) alpha x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector.axpy: dimension mismatch";
  for i = 0 to Array.length x - 1 do
    y.(i) <- Precision.fma prec alpha x.(i) y.(i)
  done

let add ?(prec = Precision.Double) x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector.add: dimension mismatch";
  Array.init (Array.length x) (fun i -> Precision.add prec x.(i) y.(i))

let sub ?(prec = Precision.Double) x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector.sub: dimension mismatch";
  Array.init (Array.length x) (fun i -> Precision.sub prec x.(i) y.(i))

let map = Array.map

let max_abs_diff x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vector.max_abs_diff: dimension mismatch";
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    x
