(** Errors shared by the factorization and solve modules. *)

exception Singular of int
(** Raised when elimination step [k] meets a zero pivot: the block is
    numerically singular.  Re-exported as [Lu.Singular]. *)
