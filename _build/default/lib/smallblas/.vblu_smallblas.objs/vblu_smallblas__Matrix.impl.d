lib/smallblas/matrix.ml: Array Float Format Lazy Precision Printf Random
