lib/smallblas/gauss_huard.ml: Array Error Float Matrix Precision
