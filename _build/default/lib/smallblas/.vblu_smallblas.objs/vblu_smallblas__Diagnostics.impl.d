lib/smallblas/diagnostics.ml: Error Float Gauss_jordan Lu Matrix Vector
