lib/smallblas/flops.ml: Array
