lib/smallblas/flops.mli:
