lib/smallblas/precision.ml: Format Int32
