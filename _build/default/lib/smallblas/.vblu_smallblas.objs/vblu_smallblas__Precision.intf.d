lib/smallblas/precision.mli: Format
