lib/smallblas/cholesky.ml: Array Matrix Precision
