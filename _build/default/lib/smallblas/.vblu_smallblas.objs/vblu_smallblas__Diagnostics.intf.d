lib/smallblas/diagnostics.mli: Lu Matrix Vector
