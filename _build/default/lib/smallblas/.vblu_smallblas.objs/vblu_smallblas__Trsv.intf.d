lib/smallblas/trsv.mli: Matrix Precision Vector
