lib/smallblas/lu.ml: Array Error Float Matrix Precision Trsv
