lib/smallblas/trsv.ml: Array Error Matrix Precision
