lib/smallblas/cholesky.mli: Matrix Precision Vector
