lib/smallblas/gauss_huard.mli: Matrix Precision Vector
