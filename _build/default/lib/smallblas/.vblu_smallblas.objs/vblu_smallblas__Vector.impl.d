lib/smallblas/vector.ml: Array Float Format Lazy Precision Random
