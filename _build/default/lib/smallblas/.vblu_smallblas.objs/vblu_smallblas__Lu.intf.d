lib/smallblas/lu.mli: Matrix Precision Vector
