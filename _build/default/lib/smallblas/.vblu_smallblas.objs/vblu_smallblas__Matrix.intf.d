lib/smallblas/matrix.mli: Format Precision Random Vector
