lib/smallblas/error.ml:
