lib/smallblas/gauss_jordan.mli: Matrix Precision Vector
