lib/smallblas/vector.mli: Format Precision Random
