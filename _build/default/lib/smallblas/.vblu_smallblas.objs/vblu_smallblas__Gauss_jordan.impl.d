lib/smallblas/gauss_jordan.ml: Array Error Float Matrix Precision
