lib/smallblas/error.mli:
