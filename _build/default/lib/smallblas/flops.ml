let getrf n =
  let n = float_of_int n in
  (* mults+adds of the trailing updates, scalings, per-step divisions. *)
  ((2.0 /. 3.0) *. n *. n *. n) -. (n *. n /. 2.0) -. (n /. 6.0)

let trsv_lower_unit n =
  let n = float_of_int n in
  n *. (n -. 1.0)

let trsv_upper n =
  let n = float_of_int n in
  (n *. (n -. 1.0)) +. n

let trsv_pair n = trsv_lower_unit n +. trsv_upper n

let gauss_huard_factor = getrf

let gauss_huard_solve n =
  let n = float_of_int n in
  2.0 *. n *. n

let invert n =
  let n = float_of_int n in
  2.0 *. n *. n *. n

let gemv n =
  let n = float_of_int n in
  2.0 *. n *. n

let batch_total per_block sizes =
  Array.fold_left (fun acc n -> acc +. per_block n) 0.0 sizes
