(** Dense vectors backed by [float array].

    These are the host-side vectors used by the Krylov solvers and the
    right-hand sides of the small block systems.  All operations allocate
    nothing unless they return a fresh vector, and every arithmetic
    operation takes the working {!Precision.t} so single-precision runs
    round identically to the simulated kernels. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** Copies [src] into [dst].  @raise Invalid_argument on dimension
    mismatch. *)

val random : ?state:Random.State.t -> ?lo:float -> ?hi:float -> int -> t
(** [random n] draws every entry uniformly from [\[lo, hi)] (default
    [\[-1, 1)]) using [state] (default a fixed deterministic state). *)

val dot : ?prec:Precision.t -> t -> t -> float
(** Inner product with sequential accumulation in the working precision. *)

val nrm2 : ?prec:Precision.t -> t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val scal : ?prec:Precision.t -> float -> t -> unit
(** [scal alpha x] overwrites [x := alpha * x]. *)

val axpy : ?prec:Precision.t -> float -> t -> t -> unit
(** [axpy alpha x y] overwrites [y := alpha * x + y]. *)

val add : ?prec:Precision.t -> t -> t -> t
val sub : ?prec:Precision.t -> t -> t -> t

val map : (float -> float) -> t -> t

val max_abs_diff : t -> t -> float
(** Componentwise infinity-norm distance; handy in tests. *)

val pp : Format.formatter -> t -> unit
