type t = Single | Double

let round p x =
  match p with
  | Double -> x
  | Single -> Int32.float_of_bits (Int32.bits_of_float x)

let eps = function
  | Single -> ldexp 1.0 (-24)
  | Double -> ldexp 1.0 (-53)

let bytes = function Single -> 4 | Double -> 8

let to_string = function Single -> "single" | Double -> "double"

let pp ppf p = Format.pp_print_string ppf (to_string p)

let add p a b = round p (a +. b)
let sub p a b = round p (a -. b)
let mul p a b = round p (a *. b)
let div p a b = round p (a /. b)
let fma p a b c = round p ((a *. b) +. c)
