(** Floating-point operation counts for the small-block kernels.

    These are the {e useful} flop counts by which the paper normalizes its
    GFLOPS plots (Section II-C): a kernel that performs extra work — e.g.
    padding a [k]-sized problem to a 32-wide register tile — still gets
    credited only for the useful flops, which is exactly how the padding
    penalty becomes visible in Figures 4–5. *)

val getrf : int -> float
(** LU factorization of an [n]×[n] block: [2/3 n³ - n²/2 - n/6] multiplies
    and adds plus [n(n-1)/2] divisions — the exact count of the
    right-looking algorithm. *)

val trsv_pair : int -> float
(** One unit-lower plus one upper triangular solve: [2 n²] flops. *)

val trsv_lower_unit : int -> float
(** [n(n-1)] flops. *)

val trsv_upper : int -> float
(** [n(n-1) + n] flops ([n] divisions). *)

val gauss_huard_factor : int -> float
(** Same leading term as {!getrf} (the paper: "the same properties ...
    distinct algorithms"). *)

val gauss_huard_solve : int -> float
(** [2 n²] flops, like {!trsv_pair}. *)

val invert : int -> float
(** Explicit inversion by Gauss-Jordan: [2 n³] flops. *)

val gemv : int -> float
(** Dense matrix-vector product: [2 n²] flops. *)

val batch_total : (int -> float) -> int array -> float
(** [batch_total per_block sizes] sums a per-block count over a batch. *)
