let factor_residual a f =
  let pa = Matrix.permute_rows a f.Lu.perm in
  let lu = Lu.reconstruct f in
  let na = Matrix.norm_frobenius a in
  if na = 0.0 then Matrix.norm_frobenius (Matrix.sub pa lu)
  else Matrix.norm_frobenius (Matrix.sub pa lu) /. na

let solve_residual a x b =
  let ax = Matrix.gemv a x in
  let num = Vector.max_abs_diff ax b in
  let den =
    (Matrix.norm_inf a *. Vector.norm_inf x) +. Vector.norm_inf b
  in
  if den = 0.0 then num else num /. den

let growth_factor a f =
  let maxa = Matrix.max_abs a in
  if maxa = 0.0 then nan
  else begin
    let n, _ = Matrix.dims f.Lu.lu in
    let maxu = ref 0.0 in
    for j = 0 to n - 1 do
      for i = 0 to j do
        maxu := Float.max !maxu (Float.abs (Matrix.unsafe_get f.Lu.lu i j))
      done
    done;
    !maxu /. maxa
  end

let one_norm a =
  let rows, cols = Matrix.dims a in
  let m = ref 0.0 in
  for j = 0 to cols - 1 do
    let s = ref 0.0 in
    for i = 0 to rows - 1 do
      s := !s +. Float.abs (Matrix.unsafe_get a i j)
    done;
    m := Float.max !m !s
  done;
  !m

let condition_estimate a =
  match Gauss_jordan.invert a with
  | inv -> one_norm a *. one_norm inv
  | exception Error.Singular _ -> infinity
