(** Preconditioned Conjugate Gradients for SPD systems.

    Not part of the paper's evaluation, but the natural smoke test for a
    preconditioner (it is very sensitive to a non-SPD or broken [M⁻¹]) and
    the solver a downstream user will reach for first on SPD workloads. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?config:Solver.config ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** Standard PCG from a zero initial guess; [stats.iterations] counts
    applications of [A]. *)
