(** Preconditioned BiCGSTAB for general nonsymmetric systems.

    The classic stabilized bi-conjugate gradient method [van der Vorst
    1992; Saad 2003] with right preconditioning — the other short-recurrence
    nonsymmetric solver MAGMA-sparse offers next to IDR(s), included so the
    examples can contrast the two on the same preconditioners. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?config:Solver.config ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** [stats.iterations] counts applications of [A] (two per BiCGSTAB
    step). *)
