(** Restarted GMRES(m) with right preconditioning.

    Long-recurrence baseline: monotone residuals inside a cycle, memory
    proportional to the restart length.  Arnoldi by modified Gram-Schmidt,
    least-squares by Givens rotations, solution update through the
    preconditioner at the end of each cycle. *)

open Vblu_smallblas
open Vblu_precond
open Vblu_sparse

val solve :
  ?prec:Precision.t ->
  ?precond:Preconditioner.t ->
  ?restart:int ->
  ?config:Solver.config ->
  Csr.t ->
  Vector.t ->
  Vector.t * Solver.stats
(** [solve ~restart:m a b] — default restart 30.  [stats.iterations]
    counts applications of [A].
    @raise Invalid_argument if [restart < 1]. *)
