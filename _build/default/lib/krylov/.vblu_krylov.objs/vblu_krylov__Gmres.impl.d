lib/krylov/gmres.ml: Array Float Precision Preconditioner Solver Sys Vblu_precond Vblu_smallblas Vector
