lib/krylov/idr.ml: Array Float Precision Preconditioner Printexc Random Solver Sys Vblu_precond Vblu_smallblas Vector
