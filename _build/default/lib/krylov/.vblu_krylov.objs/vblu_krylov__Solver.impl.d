lib/krylov/solver.ml: Array Format List Precision Preconditioner Sys Vblu_precond Vblu_smallblas Vblu_sparse Vector
