lib/krylov/cg.mli: Csr Precision Preconditioner Solver Vblu_precond Vblu_smallblas Vblu_sparse Vector
