lib/krylov/bicgstab.ml: Array Precision Preconditioner Solver Sys Vblu_precond Vblu_smallblas Vector
