lib/krylov/solver.mli: Format Precision Preconditioner Vblu_precond Vblu_smallblas Vblu_sparse Vector
