lib/perf/solver_figs.mli: Format Solver_study
