lib/perf/solver_figs.ml: Array Block_jacobi Float List Printf Report Solver_study Suite Vblu_precond Vblu_sparse Vblu_workloads
