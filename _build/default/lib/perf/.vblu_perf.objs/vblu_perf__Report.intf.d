lib/perf/report.mli: Format
