lib/perf/solver_study.mli: Block_jacobi Suite Vblu_par Vblu_precond Vblu_workloads
