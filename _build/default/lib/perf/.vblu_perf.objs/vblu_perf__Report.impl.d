lib/perf/report.ml: Array Buffer Format List Printf String
