lib/perf/solver_study.ml: Array Block_jacobi Idr List Preconditioner Printf Solver Suite Supervariable Vblu_krylov Vblu_par Vblu_precond Vblu_sparse Vblu_workloads
