lib/perf/kernel_figs.mli: Format Report
