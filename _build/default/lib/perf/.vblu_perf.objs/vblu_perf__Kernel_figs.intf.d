lib/perf/kernel_figs.mli: Format Report Vblu_par
