(** Reporting drivers for the solver experiments: Figure 8 (convergence
    histogram), Figure 9 (total time per matrix), Table I (iterations and
    runtimes per matrix and block-size bound), and the
    factorization-vs-inversion ablation.  All consume one
    {!Solver_study.t} pass. *)

val fig8 : Format.formatter -> Solver_study.t -> unit
(** Histogram of IDR(4) iteration overhead: for each block-size bound, how
    often the LU-based preconditioner converged in fewer iterations than
    the GH-based one (left of centre) or vice versa, bucketed by overhead
    percentage — the paper's symmetry argument. *)

val fig9 : Format.formatter -> Solver_study.t -> unit
(** Total time (setup + solve) of IDR(4) with LU / GH / GH-T block-Jacobi
    at bound 32, matrices sorted by total runtime; non-converged cases are
    dropped, as in the paper. *)

val table1 : Format.formatter -> Solver_study.t -> unit
(** Table I: per matrix — size, nnz, ID, then iterations and time for
    scalar Jacobi and LU-based block-Jacobi at each bound ("-" where the
    solver did not converge). *)

val ablation_variants : Format.formatter -> Solver_study.t -> unit
(** Factorization-based (LU) vs inversion-based (GJE) block-Jacobi at
    bound 32: setup/solve split and iteration counts (Section II-C's
    trade-off). *)
