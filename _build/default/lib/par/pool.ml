type t = { domains : int }

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  { domains = max 1 n }

let sequential = { domains = 1 }

let num_domains t = t.domains

(* Split [lo, hi) into at most [t.domains] contiguous chunks, run every chunk
   but the first in a fresh domain, and run the first chunk in the caller.
   The first exception observed (caller's chunk first, then spawned chunks in
   order) is re-raised after all domains joined, so no work is leaked. *)
let parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if t.domains = 1 || n = 1 then
    for i = lo to hi - 1 do
      body i
    done
  else begin
    let chunks = min t.domains n in
    let chunk_size = (n + chunks - 1) / chunks in
    let run_chunk c () =
      let clo = lo + (c * chunk_size) in
      let chi = min hi (clo + chunk_size) in
      for i = clo to chi - 1 do
        body i
      done
    in
    let spawned =
      Array.init (chunks - 1) (fun c -> Domain.spawn (run_chunk (c + 1)))
    in
    let caller_result =
      match run_chunk 0 () with
      | () -> None
      | exception e -> Some e
    in
    let spawned_result = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e ->
          if !spawned_result = None then spawned_result := Some e)
      spawned;
    match caller_result, !spawned_result with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let parallel_map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f xs.(0)) in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f xs.(i));
    out
  end

let parallel_init t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f i);
    out
  end
