lib/par/pool.ml: Array Domain
