lib/par/pool.mli:
