open Vblu_smallblas
open Vblu_sparse

type factors = {
  pattern : Csr.t;  (** original matrix (for the index structure). *)
  values : float array;  (** factored values on the same pattern. *)
  diag_pos : int array;  (** position of (i,i) within [values]. *)
}

let factorize ?(prec = Precision.Double) (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Ilu0.factorize: matrix not square";
  let diag_pos = Array.make n (-1) in
  for i = 0 to n - 1 do
    for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
      if a.Csr.col_idx.(p) = i then diag_pos.(i) <- p
    done;
    if diag_pos.(i) < 0 then
      invalid_arg "Ilu0.factorize: structurally missing diagonal entry"
  done;
  let v = Array.copy a.Csr.values in
  (* IKJ elimination restricted to the pattern.  [where.(c)] maps a column
     to its position in the current row, -1 elsewhere. *)
  let where = Array.make n (-1) in
  for i = 0 to n - 1 do
    let row_lo = a.Csr.row_ptr.(i) and row_hi = a.Csr.row_ptr.(i + 1) in
    for p = row_lo to row_hi - 1 do
      where.(a.Csr.col_idx.(p)) <- p
    done;
    for p = row_lo to row_hi - 1 do
      let k = a.Csr.col_idx.(p) in
      if k < i then begin
        let pivot = v.(diag_pos.(k)) in
        if pivot = 0.0 then raise (Error.Singular k);
        v.(p) <- Precision.div prec v.(p) pivot;
        let lik = v.(p) in
        (* Update the intersection of row i's pattern with row k's tail. *)
        for q = diag_pos.(k) + 1 to a.Csr.row_ptr.(k + 1) - 1 do
          let j = a.Csr.col_idx.(q) in
          let pj = where.(j) in
          if pj >= 0 then v.(pj) <- Precision.fma prec (-.lik) v.(q) v.(pj)
        done
      end
    done;
    if v.(diag_pos.(i)) = 0.0 then raise (Error.Singular i);
    for p = row_lo to row_hi - 1 do
      where.(a.Csr.col_idx.(p)) <- -1
    done
  done;
  { pattern = a; values = v; diag_pos }

let solve ?(prec = Precision.Double) f b =
  let a = f.pattern in
  let n, _ = Csr.dims a in
  if Array.length b <> n then invalid_arg "Ilu0.solve: dimension mismatch";
  let x = Array.copy b in
  (* Forward: unit-lower sweep over the strictly-lower entries. *)
  for i = 0 to n - 1 do
    let acc = ref x.(i) in
    for p = a.Csr.row_ptr.(i) to f.diag_pos.(i) - 1 do
      acc := Precision.fma prec (-.f.values.(p)) x.(a.Csr.col_idx.(p)) !acc
    done;
    x.(i) <- !acc
  done;
  (* Backward: upper sweep including the diagonal. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for p = f.diag_pos.(i) + 1 to a.Csr.row_ptr.(i + 1) - 1 do
      acc := Precision.fma prec (-.f.values.(p)) x.(a.Csr.col_idx.(p)) !acc
    done;
    x.(i) <- Precision.div prec !acc f.values.(f.diag_pos.(i))
  done;
  x

let preconditioner ?(prec = Precision.Double) (a : Csr.t) =
  let f, setup_seconds = Preconditioner.timed (fun () -> factorize ~prec a) in
  let n, _ = Csr.dims a in
  {
    Preconditioner.name = "ilu0";
    dim = n;
    setup_seconds;
    apply = (fun r -> solve ~prec f r);
  }
