open Vblu_smallblas

type t = {
  name : string;
  dim : int;
  setup_seconds : float;
  apply : Vector.t -> Vector.t;
}

let identity n =
  { name = "none"; dim = n; setup_seconds = 0.0; apply = Vector.copy }

let apply t r =
  if Array.length r <> t.dim then
    invalid_arg "Preconditioner.apply: dimension mismatch";
  t.apply r

let timed f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)
