lib/precond/ilu0.mli: Csr Precision Preconditioner Vblu_smallblas Vblu_sparse Vector
