lib/precond/preconditioner.ml: Array Sys Vblu_smallblas Vector
