lib/precond/block_jacobi.mli: Csr Pool Precision Preconditioner Supervariable Vblu_par Vblu_smallblas Vblu_sparse
