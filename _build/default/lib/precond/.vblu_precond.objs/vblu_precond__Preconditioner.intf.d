lib/precond/preconditioner.mli: Vblu_smallblas Vector
