lib/precond/ilu0.ml: Array Csr Error Precision Preconditioner Vblu_smallblas Vblu_sparse
