lib/precond/supervariable.mli: Csr Vblu_sparse
