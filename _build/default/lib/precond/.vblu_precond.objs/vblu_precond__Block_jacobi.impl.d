lib/precond/block_jacobi.ml: Array Cholesky Csr Error Gauss_huard Gauss_jordan List Logs Lu Matrix Pool Precision Preconditioner Printf Supervariable Vblu_par Vblu_smallblas Vblu_sparse Vector
