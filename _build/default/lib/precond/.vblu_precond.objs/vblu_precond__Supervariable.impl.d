lib/precond/supervariable.ml: Array Csr List Vblu_sparse
