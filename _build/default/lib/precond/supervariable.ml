open Vblu_sparse

type blocking = {
  starts : int array;
  sizes : int array;
}

let row_pattern (a : Csr.t) i =
  Array.sub a.Csr.col_idx a.Csr.row_ptr.(i)
    (a.Csr.row_ptr.(i + 1) - a.Csr.row_ptr.(i))

(* Jaccard index of two sorted index arrays. *)
let jaccard xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 && ny = 0 then 1.0
  else begin
    let inter = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < nx && !j < ny do
      let c = compare xs.(!i) ys.(!j) in
      if c = 0 then begin
        incr inter;
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    float_of_int !inter /. float_of_int (nx + ny - !inter)
  end

let supervariables ?(similarity = 1.0) (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Supervariable: matrix not square";
  if not (similarity > 0.0 && similarity <= 1.0) then
    invalid_arg "Supervariable: similarity must be in (0, 1]";
  let matches cur prev =
    if similarity >= 1.0 then cur = prev else jaccard cur prev >= similarity
  in
  let starts = ref [] in
  let sizes = ref [] in
  let block_start = ref 0 in
  let flush upto =
    if upto > !block_start then begin
      starts := !block_start :: !starts;
      sizes := (upto - !block_start) :: !sizes;
      block_start := upto
    end
  in
  let prev = ref (if n > 0 then row_pattern a 0 else [||]) in
  for i = 1 to n - 1 do
    let cur = row_pattern a i in
    if not (matches cur !prev) then flush i;
    prev := cur
  done;
  flush n;
  {
    starts = Array.of_list (List.rev !starts);
    sizes = Array.of_list (List.rev !sizes);
  }

let blocking ?(max_block_size = 32) ?similarity (a : Csr.t) =
  if max_block_size < 1 then invalid_arg "Supervariable.blocking: bound < 1";
  let sv = supervariables ?similarity a in
  let starts = ref [] in
  let sizes = ref [] in
  let emit start size =
    starts := start :: !starts;
    sizes := size :: !sizes
  in
  (* Greedy agglomeration of adjacent supervariables; oversized
     supervariables are split into bound-sized chunks. *)
  let acc_start = ref 0 in
  let acc_size = ref 0 in
  let flush () =
    if !acc_size > 0 then begin
      emit !acc_start !acc_size;
      acc_start := !acc_start + !acc_size;
      acc_size := 0
    end
  in
  Array.iteri
    (fun k sv_start ->
      let sv_size = sv.sizes.(k) in
      if sv_size >= max_block_size then begin
        flush ();
        acc_start := sv_start;
        let rem = ref sv_size in
        while !rem > 0 do
          let chunk = min max_block_size !rem in
          emit !acc_start chunk;
          acc_start := !acc_start + chunk;
          rem := !rem - chunk
        done
      end
      else if !acc_size + sv_size > max_block_size then begin
        flush ();
        acc_size := sv_size
      end
      else acc_size := !acc_size + sv_size)
    sv.starts;
  flush ();
  {
    starts = Array.of_list (List.rev !starts);
    sizes = Array.of_list (List.rev !sizes);
  }

let uniform ~n ~block_size =
  if n <= 0 || block_size <= 0 then invalid_arg "Supervariable.uniform";
  let k = (n + block_size - 1) / block_size in
  {
    starts = Array.init k (fun i -> i * block_size);
    sizes = Array.init k (fun i -> min block_size (n - (i * block_size)));
  }

let validate ~n { starts; sizes } =
  let k = Array.length starts in
  Array.length sizes = k
  &&
  let pos = ref 0 in
  let ok = ref true in
  for i = 0 to k - 1 do
    if starts.(i) <> !pos || sizes.(i) <= 0 then ok := false;
    pos := !pos + sizes.(i)
  done;
  !ok && !pos = n
