(** The factorization-based block-Jacobi preconditioner — the paper's
    target application (Sections II-A, III-C, IV-D).

    Setup: partition the unknowns with supervariable blocking, extract the
    dense diagonal blocks from the CSR matrix, and factorize the whole
    collection with a batched routine.  Application (once per Krylov
    iteration): solve the small triangular systems block by block.

    The [variant] selects the batched factorization the paper compares:

    - {!Lu}: the small-size batched LU with implicit partial pivoting plus
      batched eager triangular solves — the paper's contribution;
    - {!Gh} / {!Ght}: Gauss-Huard with column pivoting (normal and
      transpose-friendly storage);
    - {!Gje_inverse}: the inversion-based variant — Gauss-Jordan explicit
      inverses at setup, dense GEMV at application;
    - {!Cholesky}: the paper's future-work variant for SPD systems — LLᵀ
      factors at half the LU cost; blocks that fail the positivity test
      fall back to pivoted LU;
    - {!Scalar}: plain (point) Jacobi — Table I's leftmost baseline.

    All variants run on the CPU reference path (the numerics are identical
    to the simulated kernels, which the test suite cross-checks); a block
    that turns out singular falls back to the identity on that block, with
    a warning through [Logs], so one degenerate block does not lose the
    whole preconditioner. *)

open Vblu_smallblas
open Vblu_sparse
open Vblu_par

type variant =
  | Lu
  | Gh
  | Ght
  | Gje_inverse
  | Cholesky
  | Scalar

val variant_name : variant -> string

type info = {
  blocking : Supervariable.blocking;
  singular_blocks : int list;  (** indices that fell back to identity. *)
}

val create :
  ?pool:Pool.t ->
  ?prec:Precision.t ->
  ?variant:variant ->
  ?max_block_size:int ->
  ?blocking:Supervariable.blocking ->
  Csr.t ->
  Preconditioner.t * info
(** [create a] builds the preconditioner.  [blocking] overrides the
    supervariable partition (e.g. {!Supervariable.uniform} for the kernel
    studies); [max_block_size] (default 32) is the supervariable
    agglomeration bound otherwise.  [Preconditioner.t.setup_seconds] covers
    blocking + extraction + factorization.
    @raise Invalid_argument if [a] is not square or the blocking invalid. *)
