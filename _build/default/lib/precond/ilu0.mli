(** ILU(0): incomplete LU factorization with zero fill-in.

    The classic global preconditioner [Saad 2003, ch. 10] the paper's
    introduction positions block-Jacobi against: stronger per iteration
    (it couples the whole matrix), but inherently sequential in both setup
    and application — triangular solves over the full system do not map to
    the embarrassingly-parallel batched model that motivates the paper.
    Included as the comparison baseline for the examples and ablations:
    block-Jacobi usually needs more iterations but each one is cheap and
    parallel.

    The factorization keeps exactly the sparsity pattern of [A] (no
    fill-in) and requires nonzero diagonal entries. *)

open Vblu_smallblas
open Vblu_sparse

type factors

val factorize : ?prec:Precision.t -> Csr.t -> factors
(** IKJ-variant ILU(0).
    @raise Vblu_smallblas.Error.Singular on a zero pivot (the pattern-
    restricted elimination hit a structurally/numerically singular row).
    @raise Invalid_argument if the matrix is not square or a diagonal
    entry is structurally missing. *)

val solve : ?prec:Precision.t -> factors -> Vector.t -> Vector.t
(** Apply [((LU)⁻¹ ≈ A⁻¹)]: one sparse forward and one sparse backward
    substitution. *)

val preconditioner : ?prec:Precision.t -> Csr.t -> Preconditioner.t
(** Package as a {!Preconditioner.t} (setup time measured like the
    block-Jacobi variants). *)
