open Vblu_smallblas
open Vblu_sparse
open Vblu_par

let log_src = Logs.Src.create "vblu.block_jacobi" ~doc:"block-Jacobi setup"

module Log = (val Logs.src_log log_src : Logs.LOG)

type variant = Lu | Gh | Ght | Gje_inverse | Cholesky | Scalar

let variant_name = function
  | Lu -> "lu"
  | Gh -> "gh"
  | Ght -> "gh-t"
  | Gje_inverse -> "gje-inverse"
  | Cholesky -> "cholesky"
  | Scalar -> "scalar"

type info = {
  blocking : Supervariable.blocking;
  singular_blocks : int list;
}

(* Per-block solver closures; a singular block degrades to the identity so
   the preconditioner stays well-defined (mirrors MAGMA-sparse). *)
type block_solver = Vector.t -> Vector.t

let fallback singulars i =
  singulars := i :: !singulars;
  fun (r : Vector.t) -> Array.copy r

let block_solvers ~pool ~prec ~variant ~singulars blocks =
  let make i (m : Matrix.t) : block_solver =
    match variant with
    | Scalar ->
      (* Handled at the top level; never reaches here. *)
      assert false
    | Lu -> (
      (* The implicit-pivoting factorization — identical floats to the
         simulated register kernel (cross-checked by the test suite). *)
      match Lu.factor_implicit ~prec m with
      | f -> fun rhs -> Lu.solve ~prec f rhs
      | exception Error.Singular _ -> fallback singulars i)
    | Gh | Ght -> (
      let storage =
        if variant = Ght then Gauss_huard.Transposed else Gauss_huard.Normal
      in
      match Gauss_huard.factor ~prec ~storage m with
      | f -> fun rhs -> Gauss_huard.solve ~prec f rhs
      | exception Error.Singular _ -> fallback singulars i)
    | Gje_inverse -> (
      match Gauss_jordan.invert ~prec m with
      | inv -> fun rhs -> Matrix.gemv ~prec inv rhs
      | exception Error.Singular _ -> fallback singulars i)
    | Cholesky ->
      (* SPD fast path.  Cholesky reads only the lower triangle, so a
         nonsymmetric block would be silently mis-factored — check
         symmetry first, and fall back to the pivoted LU when the block is
         nonsymmetric or fails the positivity test (then to the identity
         only if even LU breaks down). *)
      let symmetric =
        let n, _ = Matrix.dims m in
        let ok = ref true in
        for r = 0 to n - 1 do
          for c = r + 1 to n - 1 do
            if Matrix.unsafe_get m r c <> Matrix.unsafe_get m c r then
              ok := false
          done
        done;
        !ok
      in
      let lu_fallback () =
        match Lu.factor_implicit ~prec m with
        | f -> fun rhs -> Lu.solve ~prec f rhs
        | exception Error.Singular _ -> fallback singulars i
      in
      if not symmetric then lu_fallback ()
      else (
        match Cholesky.factor ~prec m with
        | f -> fun rhs -> Cholesky.solve ~prec f rhs
        | exception Cholesky.Not_positive_definite _ -> lu_fallback ())
  in
  Pool.parallel_init pool (Array.length blocks) (fun i -> make i blocks.(i))

let create ?(pool = Pool.sequential) ?(prec = Precision.Double) ?(variant = Lu)
    ?(max_block_size = 32) ?blocking (a : Csr.t) =
  let n, cols = Csr.dims a in
  if n <> cols then invalid_arg "Block_jacobi.create: matrix not square";
  let singulars = ref [] in
  let (name, blk, apply), setup_seconds =
    Preconditioner.timed (fun () ->
        match variant with
        | Scalar ->
          let d = Csr.diagonal a in
          let inv =
            Array.mapi
              (fun i di ->
                if di = 0.0 then begin
                  singulars := i :: !singulars;
                  1.0
                end
                else 1.0 /. di)
              d
          in
          let blk = Supervariable.uniform ~n ~block_size:1 in
          let apply r =
            Array.init n (fun i -> Precision.mul prec inv.(i) r.(i))
          in
          ("jacobi", blk, apply)
        | Lu | Gh | Ght | Gje_inverse | Cholesky ->
          let blk =
            match blocking with
            | Some b ->
              if not (Supervariable.validate ~n b) then
                invalid_arg "Block_jacobi.create: invalid blocking";
              b
            | None -> Supervariable.blocking ~max_block_size a
          in
          let k = Array.length blk.Supervariable.starts in
          let blocks =
            Pool.parallel_init pool k (fun i ->
                Csr.extract_block a ~row_start:blk.Supervariable.starts.(i)
                  ~size:blk.Supervariable.sizes.(i))
          in
          let solvers = block_solvers ~pool ~prec ~variant ~singulars blocks in
          let apply r =
            let y = Array.make n 0.0 in
            Pool.parallel_for pool ~lo:0 ~hi:k (fun i ->
                let st = blk.Supervariable.starts.(i)
                and s = blk.Supervariable.sizes.(i) in
                let seg = Array.sub r st s in
                let x = solvers.(i) seg in
                Array.blit x 0 y st s);
            y
          in
          let name =
            Printf.sprintf "block-jacobi(%s,%d)" (variant_name variant)
              max_block_size
          in
          (name, blk, apply))
  in
  List.iter
    (fun i -> Log.warn (fun m -> m "singular diagonal block %d: identity fallback" i))
    !singulars;
  ( { Preconditioner.name; dim = n; setup_seconds; apply },
    { blocking = blk; singular_blocks = List.rev !singulars } )
