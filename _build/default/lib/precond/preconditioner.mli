(** The preconditioner interface consumed by the Krylov solvers.

    A preconditioner is an operator [apply : r ↦ M⁻¹r] plus bookkeeping
    about what it cost to build — the split the paper's evaluation keeps
    separate (setup in Figure 9's "setup", application inside every solver
    iteration). *)

open Vblu_smallblas

type t = {
  name : string;  (** e.g. ["block-jacobi(lu,32)"]. *)
  dim : int;  (** operand length. *)
  setup_seconds : float;  (** time spent building the operator. *)
  apply : Vector.t -> Vector.t;
      (** [apply r] returns [M⁻¹ r]; must not modify [r]. *)
}

val identity : int -> t
(** The unpreconditioned baseline: [apply] is a copy. *)

val apply : t -> Vector.t -> Vector.t
(** [apply t r] checks the dimension and delegates.
    @raise Invalid_argument on a length mismatch. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and reports elapsed processor time in seconds —
    the clock used for every setup/solve time in the reproduction. *)
