(** Supervariable blocking (Chow & Scott; Section II-A of the paper).

    Identifies consecutive variables that share the same column-nonzero
    pattern (the variables of one finite element node form such a
    {e supervariable}), then agglomerates adjacent supervariables into
    diagonal blocks up to a size bound.  The result is the block partition
    block-Jacobi factorizes — this is exactly the MAGMA-sparse routine the
    paper's solver experiments use, with the block-size upper bound as the
    only tuning knob (Table I varies it over 8–32). *)

open Vblu_sparse

type blocking = {
  starts : int array;  (** first row of each diagonal block, ascending. *)
  sizes : int array;  (** block orders; [starts/sizes] tile [0..n-1]. *)
}

val supervariables : ?similarity:float -> Csr.t -> blocking
(** The raw supervariable partition before agglomeration: maximal runs of
    consecutive rows whose column patterns match.  With the default
    [similarity = 1.0] two adjacent rows match only when their patterns are
    identical; a threshold [t < 1] accepts rows whose patterns' Jaccard
    index (|∩| / |∪|) is at least [t] — Chow & Scott's relaxed criterion
    for discretizations where boundary elements perturb otherwise-regular
    node patterns.  @raise Invalid_argument if not square or
    [similarity ∉ (0, 1]]. *)

val blocking : ?max_block_size:int -> ?similarity:float -> Csr.t -> blocking
(** [blocking ~max_block_size a] agglomerates adjacent supervariables
    greedily: a supervariable joins the current block while the block stays
    within [max_block_size] (default 32; supervariables larger than the
    bound are split).  [similarity] is passed to {!supervariables}.
    @raise Invalid_argument on a bound < 1. *)

val uniform : n:int -> block_size:int -> blocking
(** A fixed-size partition (last block possibly smaller) — the structure
    used by the fixed-size kernel benchmarks. *)

val validate : n:int -> blocking -> bool
(** Whether the blocking exactly tiles [0..n-1]. *)
