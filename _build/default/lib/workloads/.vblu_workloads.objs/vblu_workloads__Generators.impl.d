lib/workloads/generators.ml: Array Coo Float Lazy List Random Vblu_sparse
