lib/workloads/suite.mli: Csr Vblu_sparse
