lib/workloads/generators.mli: Csr Random Vblu_sparse
