lib/workloads/suite.ml: Csr Generators List Random Vblu_sparse
