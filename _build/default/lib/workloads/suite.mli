(** The 48-matrix test suite standing in for the paper's Table I.

    The paper evaluates on 48 SuiteSparse problems.  Those matrices cannot
    ship inside this repository, so each entry here names the original
    problem and generates a synthetic matrix of the same {e family}
    (structural FEM with multi-variable nodes, scalar 2-D/3-D PDEs,
    convection-dominated flows, circuit-style unbalanced patterns, dense
    block chains), scaled to run on one CPU core.  Absolute iteration
    counts will differ from Table I; the comparisons the reproduction makes
    (across block-size bounds and factorization variants) are within-suite.

    Matrices are generated on demand and deterministically (a fixed seed
    per entry). *)

open Vblu_sparse

type family =
  | Structural_fem  (** multi-variable FEM nodes → natural supervariables. *)
  | Scalar_pde  (** 2-D/3-D scalar stencils. *)
  | Convection  (** nonsymmetric, convection-dominated. *)
  | Circuit  (** unbalanced nonzeros, hub rows. *)
  | Block_chain  (** dense diagonal blocks, weak coupling. *)

val family_name : family -> string

type entry = {
  id : int;  (** 1-based index, mirroring Table I's "ID" column. *)
  name : string;  (** SuiteSparse problem this entry stands in for. *)
  family : family;
  generate : unit -> Csr.t;
}

val all : entry list
(** All 48 entries, ascending [id]. *)

val find : string -> entry option
(** Lookup by name. *)

val matrix : entry -> Csr.t
(** Generate (deterministic per entry). *)
