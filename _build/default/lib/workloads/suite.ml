open Vblu_sparse

type family = Structural_fem | Scalar_pde | Convection | Circuit | Block_chain

let family_name = function
  | Structural_fem -> "structural-fem"
  | Scalar_pde -> "scalar-pde"
  | Convection -> "convection"
  | Circuit -> "circuit"
  | Block_chain -> "block-chain"

type entry = {
  id : int;
  name : string;
  family : family;
  generate : unit -> Csr.t;
}

let seed_of id = Random.State.make [| 0x5017e; id |]

let fem id ~nodes ~vars ~coupling () =
  Generators.fem_blocks ~state:(seed_of id) ~nodes ~vars_per_node:vars ~coupling
    ~margin:0.01 ()

let chain id ~blocks ~block_size () =
  Generators.block_tridiagonal ~state:(seed_of id) ~blocks ~block_size
    ~margin:0.01 ~coupling:1.0 ()

let circuit id ~n ~hubs ~hub_degree () =
  Generators.circuit_like ~state:(seed_of id) ~n ~hubs ~hub_degree ()

(* The 48 stand-ins, ordered like Table I's name column (alphabetical); the
   id column matches the paper's "ID" indices used on Figure 9's x-axis. *)
let all =
  [
    (* name, family, generator *)
    ("ABACUS_shell_ud", Structural_fem, fun id -> fem id ~nodes:450 ~vars:4 ~coupling:0.55);
    ("af_shell3", Structural_fem, fun id -> fem id ~nodes:500 ~vars:5 ~coupling:0.5);
    ("bcsstk17", Structural_fem, fun id -> fem id ~nodes:350 ~vars:6 ~coupling:0.55);
    ("bcsstk18", Structural_fem, fun id -> fem id ~nodes:400 ~vars:4 ~coupling:0.6);
    ("bcsstk38", Structural_fem, fun id -> fem id ~nodes:300 ~vars:8 ~coupling:0.55);
    ("BenElechi1", Structural_fem, fun id -> fem id ~nodes:550 ~vars:4 ~coupling:0.5);
    ("bone010", Structural_fem, fun id -> fem id ~nodes:500 ~vars:3 ~coupling:0.55);
    ("cage10", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:40 ~ny:40 ~peclet:5.0 ());
    ("cant", Structural_fem, fun id -> fem id ~nodes:450 ~vars:3 ~coupling:0.6);
    ("ChebyshevP2", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:48 ~ny:48 ~peclet:80.0 ());
    ("ChebyshevP3", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:56 ~ny:56 ~peclet:150.0 ());
    ("crankseg_1", Structural_fem, fun id -> fem id ~nodes:380 ~vars:6 ~coupling:0.5);
    ("CurlCurl_0", Scalar_pde, fun _ () -> Generators.anisotropic_2d ~nx:70 ~ny:70 ~epsilon:0.002 ());
    ("CurlCurl_1", Scalar_pde, fun _ () -> Generators.anisotropic_2d ~nx:80 ~ny:80 ~epsilon:0.001 ());
    ("dc3", Circuit, fun id -> circuit id ~n:2200 ~hubs:10 ~hub_degree:350);
    ("dw1024", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:32 ~ny:32 ~peclet:15.0 ());
    ("dw2048", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:45 ~ny:45 ~peclet:15.0 ());
    ("dw4096", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:64 ~ny:64 ~peclet:15.0 ());
    ("dw8192", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:110 ~ny:110 ~peclet:15.0 ());
    ("ecology2", Scalar_pde, fun _ () -> Generators.laplacian_2d ~nx:110 ~ny:110 ());
    ("F2", Structural_fem, fun id -> fem id ~nodes:420 ~vars:5 ~coupling:0.55);
    ("Fault_639", Structural_fem, fun id -> fem id ~nodes:460 ~vars:4 ~coupling:0.6);
    ("gas_sensor", Scalar_pde, fun _ () -> Generators.laplacian_3d ~nx:13 ~ny:13 ~nz:13 ());
    ("gridgena", Scalar_pde, fun _ () -> Generators.anisotropic_2d ~nx:75 ~ny:75 ~epsilon:0.005 ());
    ("Hook_1498", Structural_fem, fun id -> fem id ~nodes:520 ~vars:4 ~coupling:0.55);
    ("ibm_matrix_2", Circuit, fun id -> circuit id ~n:1800 ~hubs:8 ~hub_degree:300);
    ("inline_1", Structural_fem, fun id -> fem id ~nodes:480 ~vars:6 ~coupling:0.5);
    ("Kuu", Structural_fem, fun id -> fem id ~nodes:350 ~vars:5 ~coupling:0.55);
    ("kim1", Scalar_pde, fun _ () -> Generators.laplacian_3d ~nx:12 ~ny:12 ~nz:12 ());
    ("matrix-new_3", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:60 ~ny:60 ~peclet:120.0 ());
    ("matrix_9", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:64 ~ny:64 ~peclet:200.0 ());
    ("ML_Laplace", Scalar_pde, fun _ () -> Generators.laplacian_2d ~nx:120 ~ny:120 ());
    ("nasa2910", Structural_fem, fun id -> fem id ~nodes:360 ~vars:8 ~coupling:0.5);
    ("nd12k", Scalar_pde, fun _ () -> Generators.laplacian_3d ~nx:18 ~ny:18 ~nz:18 ());
    ("nd24k", Scalar_pde, fun _ () -> Generators.laplacian_3d ~nx:20 ~ny:20 ~nz:20 ());
    ("nd3k", Scalar_pde, fun _ () -> Generators.laplacian_3d ~nx:11 ~ny:11 ~nz:11 ());
    ("nd6k", Scalar_pde, fun _ () -> Generators.laplacian_3d ~nx:12 ~ny:13 ~nz:13 ());
    ("ndk", Block_chain, fun id -> chain id ~blocks:90 ~block_size:20);
    ("newman415", Circuit, fun id -> circuit id ~n:1500 ~hubs:6 ~hub_degree:250);
    ("olm5000", Convection, fun _ () -> Generators.convection_diffusion_2d ~nx:72 ~ny:72 ~peclet:300.0 ());
    ("pres_poisson", Scalar_pde, fun _ () -> Generators.laplacian_2d ~nx:115 ~ny:115 ());
    ("raj1", Circuit, fun id -> circuit id ~n:2500 ~hubs:12 ~hub_degree:400);
    ("s1rmt3m1", Block_chain, fun id -> chain id ~blocks:110 ~block_size:18);
    ("s1rmq4m1", Block_chain, fun id -> chain id ~blocks:100 ~block_size:24);
    ("s2rmt3m1", Block_chain, fun id -> chain id ~blocks:120 ~block_size:16);
    ("s2rmq4m1", Block_chain, fun id -> chain id ~blocks:95 ~block_size:28);
    ("s3rmt3m1", Block_chain, fun id -> chain id ~blocks:130 ~block_size:12);
    ("sme3Db", Structural_fem, fun id -> fem id ~nodes:440 ~vars:5 ~coupling:0.6);
  ]
  |> List.mapi (fun i (name, family, gen) ->
         let id = i + 1 in
         { id; name; family; generate = (fun () -> gen id ()) })

let find name = List.find_opt (fun e -> e.name = name) all

let matrix e = e.generate ()
