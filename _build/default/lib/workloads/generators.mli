(** Sparse test-matrix generators.

    Synthetic stand-ins for the SuiteSparse problems of the paper's
    Table I.  Each generator controls the properties the block-Jacobi
    experiments actually depend on: an inherent diagonal block structure
    (supervariables), nonzero balance, symmetry, and conditioning.  All
    generators are deterministic for a given seed. *)

open Vblu_sparse

val laplacian_2d : ?nx:int -> ?ny:int -> unit -> Csr.t
(** 5-point finite-difference Laplacian on an [nx × ny] grid: SPD,
    perfectly balanced rows, bandwidth [nx] — the "nice" PDE baseline. *)

val laplacian_3d : ?nx:int -> ?ny:int -> ?nz:int -> unit -> Csr.t
(** 7-point stencil on a 3-D grid. *)

val convection_diffusion_2d : ?nx:int -> ?ny:int -> ?peclet:float -> unit -> Csr.t
(** Upwind-discretized convection–diffusion: nonsymmetric with the skew
    part growing with [peclet]; the workload IDR(s) is designed for. *)

val fem_blocks :
  ?state:Random.State.t ->
  ?nodes:int ->
  ?vars_per_node:int ->
  ?coupling:float ->
  ?margin:float ->
  unit ->
  Csr.t
(** A finite-element-style system: a random planar-ish node graph where
    every node carries [vars_per_node] unknowns; the variables of one node
    are densely coupled (forming exact supervariables of that size) and
    neighbouring nodes couple with strength [coupling] < 1.  The diagonal
    is set to [(1 + margin)] times the absolute off-diagonal row sum:
    nonsingular by construction, but only barely dominant (default margin
    5%), so preconditioner quality shows in the iteration counts.  This is
    the family whose block structure supervariable blocking is meant to
    discover. *)

val block_tridiagonal :
  ?state:Random.State.t ->
  ?blocks:int ->
  ?block_size:int ->
  ?margin:float ->
  ?coupling:float ->
  unit ->
  Csr.t
(** Dense diagonal blocks of the given size with scalar coupling of the
    given strength to the neighbouring blocks and a [(1 + margin)]-dominant
    diagonal — the idealized block-Jacobi target. *)

val circuit_like :
  ?state:Random.State.t -> ?n:int -> ?hubs:int -> ?hub_degree:int -> unit -> Csr.t
(** A diagonally dominant system whose pattern mixes a sparse mesh with a
    few very dense hub rows (power-grid / circuit-simulation style): the
    unbalanced-nonzero workload that motivates the shared-memory
    extraction strategy. *)

val anisotropic_2d : ?nx:int -> ?ny:int -> ?epsilon:float -> unit -> Csr.t
(** Anisotropic diffusion ([epsilon ≪ 1] weakens the y-coupling): harder
    for point Jacobi, good for line-like blocks. *)
