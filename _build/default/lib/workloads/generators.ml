open Vblu_sparse

let idx nx x y = x + (y * nx)

let laplacian_2d ?(nx = 32) ?(ny = 32) () =
  let n = nx * ny in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = idx nx x y in
      Coo.add coo i i 4.0;
      if x > 0 then Coo.add coo i (idx nx (x - 1) y) (-1.0);
      if x < nx - 1 then Coo.add coo i (idx nx (x + 1) y) (-1.0);
      if y > 0 then Coo.add coo i (idx nx x (y - 1)) (-1.0);
      if y < ny - 1 then Coo.add coo i (idx nx x (y + 1)) (-1.0)
    done
  done;
  Coo.to_csr coo

let laplacian_3d ?(nx = 12) ?(ny = 12) ?(nz = 12) () =
  let n = nx * ny * nz in
  let id x y z = x + (y * nx) + (z * nx * ny) in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let i = id x y z in
        Coo.add coo i i 6.0;
        if x > 0 then Coo.add coo i (id (x - 1) y z) (-1.0);
        if x < nx - 1 then Coo.add coo i (id (x + 1) y z) (-1.0);
        if y > 0 then Coo.add coo i (id x (y - 1) z) (-1.0);
        if y < ny - 1 then Coo.add coo i (id x (y + 1) z) (-1.0);
        if z > 0 then Coo.add coo i (id x y (z - 1)) (-1.0);
        if z < nz - 1 then Coo.add coo i (id x y (z + 1)) (-1.0)
      done
    done
  done;
  Coo.to_csr coo

let convection_diffusion_2d ?(nx = 32) ?(ny = 32) ?(peclet = 10.0) () =
  let n = nx * ny in
  let h = 1.0 /. float_of_int (nx + 1) in
  (* Upwind convection in x and y with velocity (peclet, peclet/2). *)
  let cx = peclet *. h and cy = peclet *. h /. 2.0 in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = idx nx x y in
      Coo.add coo i i (4.0 +. cx +. cy);
      if x > 0 then Coo.add coo i (idx nx (x - 1) y) (-1.0 -. cx);
      if x < nx - 1 then Coo.add coo i (idx nx (x + 1) y) (-1.0);
      if y > 0 then Coo.add coo i (idx nx x (y - 1)) (-1.0 -. cy);
      if y < ny - 1 then Coo.add coo i (idx nx x (y + 1)) (-1.0)
    done
  done;
  Coo.to_csr coo

let anisotropic_2d ?(nx = 32) ?(ny = 32) ?(epsilon = 0.01) () =
  let n = nx * ny in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = idx nx x y in
      Coo.add coo i i (2.0 +. (2.0 *. epsilon));
      if x > 0 then Coo.add coo i (idx nx (x - 1) y) (-1.0);
      if x < nx - 1 then Coo.add coo i (idx nx (x + 1) y) (-1.0);
      if y > 0 then Coo.add coo i (idx nx x (y - 1)) (-.epsilon);
      if y < ny - 1 then Coo.add coo i (idx nx x (y + 1)) (-.epsilon)
    done
  done;
  Coo.to_csr coo

let default_state = lazy (Random.State.make [| 0x5eed; 0x304ad5 |])

(* A ring-plus-chords node graph: connected, planar-ish locality so that
   natural ordering keeps neighbours close (good supervariable input). *)
let node_graph st nodes =
  let neighbors = Array.make nodes [] in
  let add a b =
    if a <> b && not (List.mem b neighbors.(a)) then begin
      neighbors.(a) <- b :: neighbors.(a);
      neighbors.(b) <- a :: neighbors.(b)
    end
  in
  for v = 0 to nodes - 1 do
    add v ((v + 1) mod nodes)
  done;
  for v = 0 to nodes - 1 do
    (* Short-range chords keep the bandwidth small. *)
    let reach = 2 + Random.State.int st 4 in
    add v (min (nodes - 1) (v + reach))
  done;
  neighbors

let fem_blocks ?state ?(nodes = 200) ?(vars_per_node = 4) ?(coupling = 0.25)
    ?(margin = 0.05) () =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  let m = vars_per_node in
  let n = nodes * m in
  let graph = node_graph st nodes in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  let rowsum = Array.make n 0.0 in
  let add i j v =
    Coo.add coo i j v;
    rowsum.(i) <- rowsum.(i) +. Float.abs v
  in
  for v = 0 to nodes - 1 do
    (* Dense node block (diagonal filled afterwards).  Off-diagonal
       entries are negative, as in a stiffness matrix: random signs would
       cancel and make the system unrealistically easy for Krylov. *)
    for a = 0 to m - 1 do
      for bb = 0 to m - 1 do
        if a <> bb then
          add ((v * m) + a) ((v * m) + bb) (-0.2 -. Random.State.float st 0.8)
      done
    done;
    (* Neighbour coupling: same column pattern for all vars of a node, so
       each node is an exact supervariable. *)
    List.iter
      (fun w ->
        for a = 0 to m - 1 do
          for bb = 0 to m - 1 do
            let value = -.coupling *. (0.2 +. Random.State.float st 0.8) in
            add ((v * m) + a) ((w * m) + bb) value
          done
        done)
      graph.(v)
  done;
  (* Barely diagonally dominant: nonsingular blocks, but weak enough that
     the preconditioner quality is visible in the iteration counts. *)
  for i = 0 to n - 1 do
    Coo.add coo i i ((1.0 +. margin) *. rowsum.(i))
  done;
  Coo.to_csr coo

let block_tridiagonal ?state ?(blocks = 64) ?(block_size = 16)
    ?(margin = 0.05) ?(coupling = 0.4) () =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  let m = block_size in
  let n = blocks * m in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  let rowsum = Array.make n 0.0 in
  let add i j v =
    Coo.add coo i j v;
    rowsum.(i) <- rowsum.(i) +. Float.abs v
  in
  for b = 0 to blocks - 1 do
    for a = 0 to m - 1 do
      for c = 0 to m - 1 do
        if a <> c then
          add ((b * m) + a) ((b * m) + c) (-0.2 -. Random.State.float st 0.8)
      done;
      (* Scalar coupling to the neighbouring blocks. *)
      if b > 0 then add ((b * m) + a) (((b - 1) * m) + a) (-.coupling);
      if b < blocks - 1 then add ((b * m) + a) (((b + 1) * m) + a) (-.coupling)
    done
  done;
  for i = 0 to n - 1 do
    Coo.add coo i i ((1.0 +. margin) *. rowsum.(i))
  done;
  Coo.to_csr coo

let circuit_like ?state ?(n = 2000) ?(hubs = 8) ?(hub_degree = 400) () =
  let st = match state with Some s -> s | None -> Lazy.force default_state in
  let coo = Coo.create ~n_rows:n ~n_cols:n in
  let offdiag = Array.make n 0.0 in
  let couple i j v =
    if i <> j then begin
      Coo.add coo i j (-.v);
      Coo.add coo j i (-.v);
      offdiag.(i) <- offdiag.(i) +. v;
      offdiag.(j) <- offdiag.(j) +. v
    end
  in
  (* Sparse local mesh. *)
  for i = 0 to n - 2 do
    couple i (i + 1) (0.5 +. Random.State.float st 1.0)
  done;
  for _ = 1 to n / 2 do
    let i = Random.State.int st n in
    let j = min (n - 1) (i + 1 + Random.State.int st 20) in
    couple i j (0.2 +. Random.State.float st 0.5)
  done;
  (* Dense hubs (ground nets / supply rails). *)
  for h = 0 to hubs - 1 do
    let hub = Random.State.int st n in
    for _ = 1 to hub_degree do
      let j = Random.State.int st n in
      if j <> hub then couple hub j (0.05 +. Random.State.float st 0.2)
    done;
    ignore h
  done;
  for i = 0 to n - 1 do
    Coo.add coo i i (offdiag.(i) +. 1.0 +. Random.State.float st 0.5)
  done;
  Coo.to_csr coo
