(** Event counters for one simulated warp.

    Every {!Warp} operation charges the counters; {!Launch} turns the
    totals into modelled kernel time.  [useful_flops] is credited
    explicitly by the kernels with the {!Vblu_smallblas.Flops} formulas, so
    padding and other overheads show up as a gap between executed work and
    useful work — the mechanism behind the paper's Figure 5 crossovers. *)

type t = {
  mutable fma_instrs : float;
      (** warp-wide arithmetic instructions (FMA/add/mul/compare). *)
  mutable div_instrs : float;  (** warp-wide divisions. *)
  mutable shfl_instrs : float;  (** warp shuffles (incl. reductions). *)
  mutable smem_accesses : float;
      (** shared-memory access instructions, bank-conflict serializations
          already included. *)
  mutable gmem_instrs : float;
      (** global load/store instructions issued (issue cost, distinct from
          the transferred bytes). *)
  mutable gmem_transactions : float;
      (** 32-byte global-memory transactions.  Held as a float so that
          size-class scaling ({!scale_into}) stays exact; round once when
          the total is consumed (see {!transactions}). *)
  mutable gmem_bytes : float;
      (** bytes moved over the global-memory interface (float, same
          rationale as [gmem_transactions]). *)
  mutable gmem_rounds : int;
      (** dependent global-memory round-trips (each adds a latency term to
          the single-warp critical path). *)
  mutable useful_flops : float;
}

val create : unit -> t

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val scale_into : t -> float -> t
(** [scale_into x f] returns a fresh counter holding [x] scaled by [f] —
    used when one representative warp stands for a whole size class.  The
    scaled transaction/byte counts are kept exact (no per-class rounding),
    so [Sampled] extrapolation matches [Exact] accumulation. *)

val transactions : t -> int
(** Global-memory transaction total, rounded to the nearest integer. *)

val bytes : t -> int
(** Global-memory byte total, rounded to the nearest integer. *)

val credit_flops : t -> float -> unit

val total_instrs : t -> float

val pp : Format.formatter -> t -> unit
