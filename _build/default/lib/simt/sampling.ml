
type mode = Exact | Sampled

let run ?(cfg = Config.p100) ~prec ~mode ~sizes ~kernel () =
  let n = Array.length sizes in
  if n = 0 then invalid_arg "Sampling.run: empty batch";
  let total = Counter.create () in
  let max_warp = ref (Counter.create ()) in
  let max_cycles = ref (-1.0) in
  let observe c =
    Counter.add total c;
    let cy = Launch.warp_cycles cfg prec c in
    if cy > !max_cycles then begin
      max_cycles := cy;
      max_warp := c
    end
  in
  (match mode with
  | Exact ->
    for i = 0 to n - 1 do
      let w = Warp.create ~cfg prec () in
      kernel w i;
      observe (Warp.counter w)
    done
  | Sampled ->
    (* One representative (the first occurrence) per distinct size. *)
    let seen = Hashtbl.create 8 in
    Array.iteri
      (fun i s ->
        match Hashtbl.find_opt seen s with
        | Some (rep, count) -> Hashtbl.replace seen s (rep, count + 1)
        | None -> Hashtbl.add seen s (i, 1))
      sizes;
    let classes =
      Hashtbl.fold (fun _ (rep, count) acc -> (rep, count) :: acc) seen []
      |> List.sort compare
    in
    List.iter
      (fun (rep, count) ->
        let w = Warp.create ~cfg prec () in
        kernel w rep;
        let c = Warp.counter w in
        let cy = Launch.warp_cycles cfg prec c in
        if cy > !max_cycles then begin
          max_cycles := cy;
          max_warp := c
        end;
        Counter.add total (Counter.scale_into c (float_of_int count)))
      classes);
  Launch.time ~cfg ~prec ~warps:n ~total ~max_warp:!max_warp ()
