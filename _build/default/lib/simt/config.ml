open Vblu_smallblas

type t = {
  name : string;
  num_sms : int;
  clock_ghz : float;
  warp_size : int;
  max_warps_per_sm : int;
  fma_cycles_sp : float;
  fma_cycles_dp : float;
  div_cycles_sp : float;
  div_cycles_dp : float;
  shfl_cycles : float;
  dp_shfl_factor : float;
  smem_cycles : float;
  gmem_issue_cycles : float;
  mem_bandwidth_gbs : float;
  mem_efficiency : float;
  mem_latency_cycles : float;
  transaction_bytes : int;
  smem_banks : int;
  launch_overhead_us : float;
  max_issue_efficiency : float;
  occupancy_tau : float;
}

let p100 =
  {
    name = "Tesla P100 (model)";
    num_sms = 56;
    clock_ghz = 1.328;
    warp_size = 32;
    max_warps_per_sm = 64;
    fma_cycles_sp = 0.5;
    fma_cycles_dp = 1.0;
    div_cycles_sp = 4.0;
    div_cycles_dp = 8.0;
    shfl_cycles = 1.0;
    dp_shfl_factor = 2.0;
    smem_cycles = 1.0;
    gmem_issue_cycles = 8.0;
    mem_bandwidth_gbs = 732.0;
    mem_efficiency = 0.45;
    mem_latency_cycles = 450.0;
    transaction_bytes = 32;
    smem_banks = 32;
    launch_overhead_us = 4.0;
    max_issue_efficiency = 0.65;
    occupancy_tau = 73.0;
  }

let fma_cycles t = function
  | Precision.Single -> t.fma_cycles_sp
  | Precision.Double -> t.fma_cycles_dp

let div_cycles t = function
  | Precision.Single -> t.div_cycles_sp
  | Precision.Double -> t.div_cycles_dp

let elements_per_transaction t prec =
  max 1 (t.transaction_bytes / Precision.bytes prec)
