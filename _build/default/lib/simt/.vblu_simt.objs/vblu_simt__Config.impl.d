lib/simt/config.ml: Precision Vblu_smallblas
