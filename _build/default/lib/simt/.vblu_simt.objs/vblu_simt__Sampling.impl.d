lib/simt/sampling.ml: Array Config Counter Hashtbl Launch List Warp
