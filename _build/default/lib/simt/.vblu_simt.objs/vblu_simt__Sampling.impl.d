lib/simt/sampling.ml: Array Config Counter Hashtbl Launch List Pool Vblu_par Warp
