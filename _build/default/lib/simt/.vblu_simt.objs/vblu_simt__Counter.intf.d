lib/simt/counter.mli: Format
