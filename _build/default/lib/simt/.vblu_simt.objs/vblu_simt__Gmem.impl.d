lib/simt/gmem.ml: Array Precision Vblu_smallblas
