lib/simt/gmem.mli: Precision Vblu_smallblas
