lib/simt/launch.mli: Config Counter Format Precision Vblu_smallblas
