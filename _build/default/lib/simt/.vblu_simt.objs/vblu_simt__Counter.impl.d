lib/simt/counter.ml: Float Format
