lib/simt/counter.ml: Format
