lib/simt/launch.ml: Config Counter Float Format Vblu_smallblas
