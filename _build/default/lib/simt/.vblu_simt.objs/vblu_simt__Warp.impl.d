lib/simt/warp.ml: Array Config Counter Float Gmem Hashtbl Precision Vblu_smallblas
