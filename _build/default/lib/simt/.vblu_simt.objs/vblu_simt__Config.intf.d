lib/simt/config.mli: Precision Vblu_smallblas
