lib/simt/sampling.mli: Config Launch Precision Vblu_smallblas Warp
