lib/simt/sampling.mli: Config Launch Pool Precision Vblu_par Vblu_smallblas Warp
