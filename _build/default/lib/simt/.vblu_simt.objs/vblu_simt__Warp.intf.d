lib/simt/warp.mli: Config Counter Gmem Precision Vblu_smallblas
