(** Batch execution over the simulator: exact and sampled modes.

    A batched kernel is one warp per problem.  Running all 40,000 warps of
    a paper-sized benchmark through the functional simulator would be
    pointlessly slow, and — because the small-block kernels are
    warp-synchronous with data-independent control flow — unnecessary: two
    problems of the same size execute the same instruction stream.

    [Exact] runs every warp (and thus computes every result); [Sampled]
    runs one representative warp per distinct problem size and scales its
    counters by the class population.  The test suite checks that the two
    modes agree on the modelled counters; result-consuming code (the
    preconditioner setup) always uses [Exact]. *)

open Vblu_smallblas

type mode =
  | Exact
  | Sampled

val run :
  ?cfg:Config.t ->
  prec:Precision.t ->
  mode:mode ->
  sizes:int array ->
  kernel:(Warp.t -> int -> unit) ->
  unit ->
  Launch.stats
(** [run ~prec ~mode ~sizes ~kernel ()] executes [kernel warp i] for every
    problem [i] (or one representative per size class in [Sampled] mode;
    representatives are the first index of each class) on a fresh warp, and
    feeds the counters to {!Launch.time}.
    @raise Invalid_argument on an empty batch. *)
